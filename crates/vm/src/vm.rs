//! The MiniCC interpreter.
//!
//! One [`Vm`] executes one program run. The unit of execution is the
//! *statement*: [`Vm::step`] runs exactly one statement of one thread and
//! reports everything it did through an [`Observer`]. Scheduling lives
//! outside the VM (see [`crate::sched`]), which is what lets the same
//! interpreter play every role in the paper: the "multicore" failing run
//! (random instruction-level interleaving), the deterministic single-core
//! passing run, and the preemption-injected search runs.
//!
//! Design notes mirroring the paper's assumptions:
//!
//! * **Loop counters.** Frames carry one counter per loop
//!   ([`Frame::loop_counters`]); the synthetic `LoopEnter`/`LoopIter`
//!   instructions maintain them. Counters of *natural* loops (`for`) are
//!   free; instrumented (`while`) counters cost one instruction per
//!   update when [`Vm::set_count_loop_instr`] is enabled — this is the
//!   overhead Fig. 10 measures.
//! * **Crash freezing.** On failure the VM freezes with the crashing
//!   thread's program counter still at the faulting statement, so a core
//!   dump taken from it shows the failure context exactly like a real
//!   dump would.
//! * **Determinism.** Given the same program, input, and sequence of
//!   scheduling decisions, a run is bit-identical — the foundation for
//!   checkpoint-free replay (the paper's re-execution phase).
//! * **Cheap checkpoints.** The schedule search forks the VM at every
//!   `preempt()` branch, so `Vm::clone` is the hottest operation of the
//!   whole pipeline. Globals, the heap, and every call stack live in
//!   copy-on-write storage ([`Arc`]-backed, deep-copied lazily on the
//!   first write after a clone), which makes a checkpoint a handful of
//!   reference-count bumps — O(threads) — instead of a deep copy of all
//!   live state.

use crate::event::{Event, Observer, SyncKind};
use crate::failure::{Failure, FailureKind};
use crate::memloc::MemLoc;
use crate::memmodel::{BufferedStore, FaultKind, FaultSpec, InjectedFault, MemModel};
use crate::plan::{DispatchPlan, Op, Rhs};
use crate::value::{ObjId, ThreadId, Value};
use mcr_lang::{
    BinOp, Expr, FuncId, GlobalId, GlobalKind, Inst, LocalId, Pc, Place, Program, StmtId, UnOp,
};
use std::sync::Arc;

/// Maximum call depth per thread.
pub const MAX_FRAMES: usize = 512;
/// Maximum slots per heap object.
pub const MAX_ALLOC: i64 = 1 << 20;

/// A global variable's runtime storage.
#[derive(Debug, Clone, PartialEq)]
pub enum GSlot {
    /// A single slot.
    Scalar(Value),
    /// A fixed-size array of slots.
    Array(Vec<Value>),
}

/// One stack frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The function this frame executes.
    pub func: FuncId,
    /// Current statement. While a callee is active this points at the
    /// call statement, so the frame chain reads like a stack trace.
    pub pc: StmtId,
    /// Local slots (parameters first), zero-initialized.
    pub locals: Vec<Value>,
    /// Loop counters, one per loop of the function (paper §3.2:
    /// "instrument the code to add a loop count").
    pub loop_counters: Vec<i64>,
    /// Unique activation serial (process-wide), for local identity.
    pub serial: u64,
    /// Where the caller wants the return value.
    ret_dst: Option<ResolvedPlace>,
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Has work to do (may still be blocked on a lock or join).
    Ready,
    /// Ran to completion.
    Done,
    /// Crashed (the whole run is over).
    Crashed,
}

/// A copy-on-write call stack.
///
/// Cloning (which happens for every thread on every [`Vm`] checkpoint)
/// bumps one reference count; the frames are deep-copied lazily, on the
/// first mutation after a clone. Reads go through [`std::ops::Deref`] to
/// `[Frame]`, so existing slice-style access keeps working.
#[derive(Debug, Clone)]
pub struct Frames(Arc<Vec<Frame>>);

impl Frames {
    fn new(frames: Vec<Frame>) -> Frames {
        Frames(Arc::new(frames))
    }

    /// Mutable access, deep-copying first if the stack is shared with a
    /// checkpoint.
    fn make_mut(&mut self) -> &mut Vec<Frame> {
        Arc::make_mut(&mut self.0)
    }

    fn last_mut(&mut self) -> Option<&mut Frame> {
        self.make_mut().last_mut()
    }

    fn push(&mut self, frame: Frame) {
        self.make_mut().push(frame);
    }

    fn pop(&mut self) -> Option<Frame> {
        self.make_mut().pop()
    }
}

impl std::ops::Deref for Frames {
    type Target = [Frame];

    fn deref(&self) -> &[Frame] {
        &self.0
    }
}

impl<'a> IntoIterator for &'a Frames {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// One thread of execution.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id (spawn order).
    pub id: ThreadId,
    /// Entry function.
    pub entry: FuncId,
    /// Call stack; empty once the thread is done.
    pub frames: Frames,
    /// Lifecycle state.
    pub state: ThreadState,
    /// Synchronization operations executed so far.
    pub sync_seq: u32,
    /// Instructions retired (the hardware counter of the paper's Table 5).
    pub instrs: u64,
    /// Statements executed (including zero-cost synthetic ones).
    pub steps_taken: u64,
    /// The thread's "register file": the most recently computed value.
    pub last_value: Value,
    /// Pending shared stores not yet globally visible (TSO mode only;
    /// always empty under [`MemModel::Sc`]). Oldest first.
    pub store_buffer: Vec<BufferedStore>,
    /// Allocations attempted so far (the per-thread ordinal
    /// [`crate::FaultSpec`] keys [`FaultKind::AllocFail`] on).
    pub alloc_seq: u32,
    /// Lock acquisitions attempted so far (the per-thread ordinal
    /// [`crate::FaultSpec`] keys [`FaultKind::LockTimeout`] on).
    pub acquire_seq: u32,
}

impl Thread {
    /// The innermost frame, if the thread is live.
    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The current program counter, if the thread is live.
    pub fn pc(&self) -> Option<Pc> {
        self.top().map(|f| Pc::new(f.func, f.pc))
    }
}

/// A fully resolved assignable location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedPlace {
    Local(LocalId),
    Global(GlobalId),
    GlobalElem(GlobalId, u32),
    Heap(ObjId, u32),
}

/// The interpreter state for one run.
///
/// Cloning a `Vm` is a *checkpoint*: globals, the heap, and every call
/// stack are copy-on-write, so the clone costs O(threads) reference-count
/// bumps and diverges lazily as either copy writes.
#[derive(Debug, Clone)]
pub struct Vm<'p> {
    program: &'p Program,
    /// Optional direct-threaded dispatch plan ([`DispatchPlan`]); when
    /// attached, the statement executor's hot arms read pre-decoded
    /// operands from the plan table and only fall back to the legacy
    /// `Expr` walk for [`Op::Slow`] statements. Shared by reference
    /// between checkpoints (clone = one refcount bump).
    plan: Option<Arc<DispatchPlan>>,
    /// All global storage behind one COW cell; the first write after a
    /// checkpoint copies the vector (subsequent writes hit the unique
    /// fast path of [`Arc::make_mut`]).
    globals: Arc<Vec<GSlot>>,
    /// Two-level COW heap: the object table and each object's slots are
    /// independently shared, so a post-checkpoint store deep-copies only
    /// the table spine and the one object written.
    heap: Arc<Vec<Option<Arc<Vec<Value>>>>>,
    threads: Vec<Thread>,
    locks: Vec<Option<ThreadId>>,
    next_frame_serial: u64,
    steps: u64,
    instrs: u64,
    count_loop_instr: bool,
    /// Memory consistency model for this run. [`MemModel::Sc`] (the
    /// default) is bit-identical to the historical VM; see
    /// [`crate::memmodel`].
    mem_model: MemModel,
    /// Environment faults to inject, keyed by per-thread operation
    /// ordinals (schedule-independent).
    faults: Vec<FaultSpec>,
    /// The most recent injected fault, attached to the failure if the
    /// run crashes (so distinct faults stay distinct bugs).
    pending_fault: Option<InjectedFault>,
    failure: Option<Failure>,
    outputs: Vec<Value>,
    /// Events describing state that existed before any observer attached
    /// (the main thread's creation); drained on the first step.
    pending_events: Vec<Event>,
    /// Scratch buffers reused across steps so the statement hot path does
    /// not allocate. Always empty between steps; cloning them is free.
    reads_buf: Vec<(MemLoc, Value)>,
    events_buf: Vec<Event>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program`, wiring `input` into the conventional
    /// `input` / `input_len` globals when the program declares them.
    ///
    /// The main function starts as thread 0 with no arguments.
    pub fn new(program: &'p Program, input: &[i64]) -> Vm<'p> {
        let mut globals: Vec<GSlot> = program
            .globals
            .iter()
            .map(|g| match &g.kind {
                GlobalKind::Scalar { init } => GSlot::Scalar(Value::Int(*init)),
                GlobalKind::Ptr => GSlot::Scalar(Value::NULL),
                GlobalKind::Array { len, init } => GSlot::Array(vec![Value::Int(*init); *len]),
            })
            .collect();
        if let Some(g) = program.global_by_name("input") {
            if let GSlot::Array(slots) = &mut globals[g.0 as usize] {
                for (slot, v) in slots.iter_mut().zip(input) {
                    *slot = Value::Int(*v);
                }
            }
        }
        if let Some(g) = program.global_by_name("input_len") {
            if let GSlot::Scalar(s) = &mut globals[g.0 as usize] {
                *s = Value::Int(input.len() as i64);
            }
        }

        let mut vm = Vm {
            program,
            plan: None,
            globals: Arc::new(globals),
            heap: Arc::new(Vec::new()),
            threads: Vec::new(),
            locks: vec![None; program.locks.len()],
            next_frame_serial: 0,
            steps: 0,
            instrs: 0,
            count_loop_instr: true,
            mem_model: MemModel::Sc,
            faults: Vec::new(),
            pending_fault: None,
            failure: None,
            outputs: Vec::new(),
            pending_events: Vec::new(),
            reads_buf: Vec::new(),
            events_buf: Vec::new(),
        };
        let main = vm.spawn_thread(program.main, Vec::new());
        let frame = vm.threads[main.0 as usize]
            .frames
            .last()
            .expect("fresh thread")
            .serial;
        vm.pending_events.push(Event::ThreadStart {
            tid: main,
            func: program.main,
        });
        vm.pending_events.push(Event::FuncEnter {
            tid: main,
            func: program.main,
            frame,
        });
        vm
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Attaches a direct-threaded dispatch plan compiled for this VM's
    /// program. Execution stays bit-identical to the legacy loop — a
    /// plan only changes how statements are decoded.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the plan's shape does not match the
    /// program.
    pub fn set_plan(&mut self, plan: Arc<DispatchPlan>) {
        debug_assert!(
            plan.matches(self.program),
            "dispatch plan does not match the program"
        );
        self.plan = Some(plan);
    }

    /// Builder form of [`Vm::set_plan`].
    pub fn with_plan(mut self, plan: Arc<DispatchPlan>) -> Self {
        self.set_plan(plan);
        self
    }

    /// The attached dispatch plan, if any.
    pub fn plan(&self) -> Option<&Arc<DispatchPlan>> {
        self.plan.as_ref()
    }

    /// Selects the memory consistency model. Must be called before the
    /// first step (store buffers start empty either way, so switching on
    /// a fresh VM is always safe; switching mid-run is not supported).
    pub fn set_mem_model(&mut self, model: MemModel) {
        debug_assert_eq!(self.steps, 0, "memory model must be set before stepping");
        self.mem_model = model;
    }

    /// Builder form of [`Vm::set_mem_model`].
    pub fn with_mem_model(mut self, model: MemModel) -> Self {
        self.set_mem_model(model);
        self
    }

    /// The memory consistency model this run executes under.
    pub fn mem_model(&self) -> MemModel {
        self.mem_model
    }

    /// Installs the set of environment faults to inject (see
    /// [`FaultSpec`]). Injection is schedule-independent, so the same
    /// specs make a stress run and a search replay fault identically.
    pub fn set_faults(&mut self, faults: &[FaultSpec]) {
        self.faults = faults.to_vec();
    }

    /// Builder form of [`Vm::set_faults`].
    pub fn with_faults(mut self, faults: &[FaultSpec]) -> Self {
        self.set_faults(faults);
        self
    }

    /// The installed fault specs.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Whether thread `tid`'s *next* statement is a store-buffer drain
    /// point: a `fence` (always — fences are stable scheduling anchors
    /// in every model), or, with pending buffered stores, any
    /// drain-forcing operation (lock ops, spawn, join, thread exit).
    ///
    /// This is the lookahead predicate the schedule search and the
    /// stress scheduler use to place preemptions *before* the flush —
    /// the only instant at which a store→load reordering is observable
    /// from outside the thread.
    pub fn flush_point(&self, tid: ThreadId) -> bool {
        let Some(t) = self.threads.get(tid.0 as usize) else {
            return false;
        };
        if t.state != ThreadState::Ready {
            return false;
        }
        match self.next_inst(tid) {
            Some(Inst::Fence) => true,
            Some(
                Inst::Acquire { .. }
                | Inst::Release { .. }
                | Inst::Spawn { .. }
                | Inst::Join { .. },
            ) => !t.store_buffer.is_empty(),
            Some(Inst::Return { .. }) => t.frames.len() == 1 && !t.store_buffer.is_empty(),
            _ => false,
        }
    }

    /// The injected fault matching thread `tid`'s `nth` operation of
    /// `kind`, if one is configured.
    fn fault_for(&self, kind: FaultKind, tid: ThreadId, nth: u32) -> Option<InjectedFault> {
        self.faults
            .iter()
            .find(|f| f.kind == kind && f.tid == tid && f.nth == nth)
            .map(|f| InjectedFault {
                kind: f.kind,
                nth: f.nth,
            })
    }

    /// Enables or disables charging instructions for loop-counter
    /// instrumentation (Fig. 10's instrumented vs. plain comparison).
    /// Counters are always *maintained* — only their cost toggles.
    pub fn set_count_loop_instr(&mut self, on: bool) {
        self.count_loop_instr = on;
    }

    /// Statements executed so far across all threads.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Instructions retired across all threads.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// The failure, if the run crashed.
    pub fn failure(&self) -> Option<Failure> {
        self.failure
    }

    /// Values produced by `output(..)`.
    pub fn outputs(&self) -> &[Value] {
        &self.outputs
    }

    /// All threads (indexed by [`ThreadId`]).
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// One thread.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.0 as usize]
    }

    /// Global storage (indexed by [`GlobalId`]).
    pub fn globals(&self) -> &[GSlot] {
        &self.globals
    }

    /// Heap objects that are currently allocated.
    pub fn heap_objects(&self) -> impl Iterator<Item = (ObjId, &[Value])> {
        self.heap
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_deref().map(|v| (ObjId(i as u32), v.as_slice())))
    }

    /// Raw heap vector length (object ids are indices below this).
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Reads a heap slot, if the object exists and the index is in range.
    pub fn heap_get(&self, obj: ObjId, idx: u32) -> Option<Value> {
        self.heap
            .get(obj.0 as usize)?
            .as_ref()?
            .get(idx as usize)
            .copied()
    }

    /// Current lock owners (indexed by lock id).
    pub fn lock_owners(&self) -> &[Option<ThreadId>] {
        &self.locks
    }

    /// True when every thread has finished.
    pub fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Done)
    }

    /// The statement a thread will execute next, if it is live.
    pub fn next_inst(&self, tid: ThreadId) -> Option<&'p Inst> {
        let pc = self.threads.get(tid.0 as usize)?.pc()?;
        Some(self.program.inst(pc))
    }

    /// Whether `tid` can take a step right now. A thread whose next
    /// statement is an `acquire` of a held lock, or a `join` on a live
    /// thread, is not runnable (it never busy-steps).
    pub fn runnable(&self, tid: ThreadId) -> bool {
        let Some(t) = self.threads.get(tid.0 as usize) else {
            return false;
        };
        if t.state != ThreadState::Ready || self.failure.is_some() {
            return false;
        }
        match self.next_inst(tid) {
            // A held lock blocks the acquirer — including re-acquisition by
            // the owner (locks are not reentrant; a self-acquire deadlocks,
            // as with a default pthread mutex). An injected lock timeout
            // makes the blocked acquirer runnable so the step can surface
            // the LockTimeout failure.
            Some(Inst::Acquire { lock }) => {
                self.locks[lock.0 as usize].is_none()
                    || self
                        .fault_for(FaultKind::LockTimeout, tid, t.acquire_seq)
                        .is_some()
            }
            Some(Inst::Join { thread }) => {
                let frame = t.frames.last().expect("live thread has a frame");
                match self.eval_quiet(t, frame, thread) {
                    Ok(Value::Int(target)) => self
                        .threads
                        .get(target as usize)
                        .is_none_or(|th| th.state != ThreadState::Ready),
                    // Non-integer or failing evaluation: runnable so the
                    // step surfaces the real failure.
                    _ => true,
                }
            }
            Some(_) => true,
            None => false,
        }
    }

    /// All currently runnable threads, in id order.
    ///
    /// Allocates a fresh `Vec` per call; step loops should prefer
    /// [`Vm::runnable_into`] (scratch-buffer reuse) or
    /// [`Vm::runnable_iter`].
    pub fn runnable_threads(&self) -> Vec<ThreadId> {
        self.runnable_iter().collect()
    }

    /// Iterates the currently runnable threads in id order without
    /// allocating.
    pub fn runnable_iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u32)
            .map(ThreadId)
            .filter(|&t| self.runnable(t))
    }

    /// Collects the currently runnable threads (id order) into `out`,
    /// clearing it first. Lets run loops reuse one scratch buffer instead
    /// of allocating every step.
    pub fn runnable_into(&self, out: &mut Vec<ThreadId>) {
        out.clear();
        out.extend(self.runnable_iter());
    }

    fn spawn_thread(&mut self, entry: FuncId, args: Vec<Value>) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u32);
        let func = self.program.func(entry);
        let mut locals = vec![Value::default(); func.local_count()];
        for (slot, v) in locals.iter_mut().zip(args.iter()) {
            *slot = *v;
        }
        let frame = Frame {
            func: entry,
            pc: StmtId(0),
            locals,
            loop_counters: vec![0; func.loops.len()],
            serial: self.next_frame_serial,
            ret_dst: None,
        };
        self.next_frame_serial += 1;
        self.threads.push(Thread {
            id: tid,
            entry,
            frames: Frames::new(vec![frame]),
            state: ThreadState::Ready,
            sync_seq: 0,
            instrs: 0,
            steps_taken: 0,
            last_value: Value::default(),
            store_buffer: Vec::new(),
            alloc_seq: 0,
            acquire_seq: 0,
        });
        tid
    }

    /// Quiet expression evaluation (no events) used by `runnable`.
    fn eval_quiet(&self, thread: &Thread, frame: &Frame, e: &Expr) -> Result<Value, FailureKind> {
        let mut sink = Vec::new();
        self.eval(thread, frame, e, &mut sink)
    }

    /// Store-to-load forwarding: the youngest buffered store to `loc`
    /// from the reading thread's own buffer, if any. Other threads'
    /// buffers are invisible by TSO design; under SC the buffer is
    /// always empty and this is a no-op.
    #[inline]
    fn snoop(thread: &Thread, loc: MemLoc) -> Option<Value> {
        thread
            .store_buffer
            .iter()
            .rev()
            .find(|b| b.loc == loc)
            .map(|b| b.value)
    }

    fn eval(
        &self,
        thread: &Thread,
        frame: &Frame,
        e: &Expr,
        reads: &mut Vec<(MemLoc, Value)>,
    ) -> Result<Value, FailureKind> {
        match e {
            Expr::Const(v) => Ok(Value::Int(*v)),
            Expr::Null => Ok(Value::NULL),
            Expr::Local(l) => {
                let v = frame.locals[l.0 as usize];
                reads.push((
                    MemLoc::Local {
                        tid: thread.id,
                        frame: frame.serial,
                        local: *l,
                    },
                    v,
                ));
                Ok(v)
            }
            Expr::Global(g) => match &self.globals[g.0 as usize] {
                GSlot::Scalar(v) => {
                    let v = Self::snoop(thread, MemLoc::Global(*g)).unwrap_or(*v);
                    reads.push((MemLoc::Global(*g), v));
                    Ok(v)
                }
                GSlot::Array(_) => Err(FailureKind::TypeConfusion),
            },
            Expr::GlobalElem(g, idx) => {
                let i = self.eval(thread, frame, idx, reads)?;
                let i = i.as_int().ok_or(FailureKind::TypeConfusion)?;
                match &self.globals[g.0 as usize] {
                    GSlot::Array(slots) => {
                        if i < 0 || i as usize >= slots.len() {
                            return Err(FailureKind::GlobalOutOfBounds);
                        }
                        let loc = MemLoc::GlobalElem(*g, i as u32);
                        let v = Self::snoop(thread, loc).unwrap_or(slots[i as usize]);
                        reads.push((loc, v));
                        Ok(v)
                    }
                    GSlot::Scalar(_) => Err(FailureKind::TypeConfusion),
                }
            }
            Expr::HeapLoad { ptr, idx } => {
                let p = self.eval(thread, frame, ptr, reads)?;
                let i = self.eval(thread, frame, idx, reads)?;
                let obj = p
                    .as_ptr()
                    .ok_or(FailureKind::TypeConfusion)?
                    .ok_or(FailureKind::NullDeref)?;
                let i = i.as_int().ok_or(FailureKind::TypeConfusion)?;
                let slots = self.heap[obj.0 as usize]
                    .as_ref()
                    .ok_or(FailureKind::OutOfBounds)?;
                if i < 0 || i as usize >= slots.len() {
                    return Err(FailureKind::OutOfBounds);
                }
                let loc = MemLoc::Heap(obj, i as u32);
                let v = Self::snoop(thread, loc).unwrap_or(slots[i as usize]);
                reads.push((loc, v));
                Ok(v)
            }
            Expr::Unary(op, a) => {
                let v = self.eval(thread, frame, a, reads)?;
                match op {
                    UnOp::Not => Ok(Value::from(!v.truthy())),
                    UnOp::Neg => {
                        let v = v.as_int().ok_or(FailureKind::TypeConfusion)?;
                        Ok(Value::Int(v.wrapping_neg()))
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(thread, frame, a, reads)?;
                let vb = self.eval(thread, frame, b, reads)?;
                self.binop(*op, va, vb)
            }
        }
    }

    #[inline(always)]
    fn binop(&self, op: BinOp, a: Value, b: Value) -> Result<Value, FailureKind> {
        use BinOp::*;
        match op {
            And => return Ok(Value::from(a.truthy() && b.truthy())),
            Or => return Ok(Value::from(a.truthy() || b.truthy())),
            Eq | Ne => {
                let eq = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => x == y,
                    (Value::Ptr(x), Value::Ptr(y)) => x == y,
                    // Comparing a pointer against an integer is the kind of
                    // type confusion C permits; follow C: only equal when
                    // the pointer is null and the int is 0.
                    (Value::Ptr(p), Value::Int(v)) | (Value::Int(v), Value::Ptr(p)) => {
                        p.is_none() && v == 0
                    }
                };
                return Ok(Value::from(if op == Eq { eq } else { !eq }));
            }
            _ => {}
        }
        let x = a.as_int().ok_or(FailureKind::TypeConfusion)?;
        let y = b.as_int().ok_or(FailureKind::TypeConfusion)?;
        let v = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(FailureKind::DivByZero);
                }
                x.wrapping_div(y)
            }
            Mod => {
                if y == 0 {
                    return Err(FailureKind::DivByZero);
                }
                x.wrapping_rem(y)
            }
            Lt => (x < y) as i64,
            Le => (x <= y) as i64,
            Gt => (x > y) as i64,
            Ge => (x >= y) as i64,
            Eq | Ne | And | Or => unreachable!("handled above"),
        };
        Ok(Value::Int(v))
    }

    fn resolve_place(
        &self,
        thread: &Thread,
        frame: &Frame,
        place: &Place,
        reads: &mut Vec<(MemLoc, Value)>,
    ) -> Result<ResolvedPlace, FailureKind> {
        match place {
            Place::Local(l) => Ok(ResolvedPlace::Local(*l)),
            Place::Global(g) => Ok(ResolvedPlace::Global(*g)),
            Place::GlobalElem(g, idx) => {
                let i = self
                    .eval(thread, frame, idx, reads)?
                    .as_int()
                    .ok_or(FailureKind::TypeConfusion)?;
                match &self.globals[g.0 as usize] {
                    GSlot::Array(slots) if i >= 0 && (i as usize) < slots.len() => {
                        Ok(ResolvedPlace::GlobalElem(*g, i as u32))
                    }
                    GSlot::Array(_) => Err(FailureKind::GlobalOutOfBounds),
                    GSlot::Scalar(_) => Err(FailureKind::TypeConfusion),
                }
            }
            Place::HeapStore { ptr, idx } => {
                let p = self.eval(thread, frame, ptr, reads)?;
                let i = self.eval(thread, frame, idx, reads)?;
                let obj = p
                    .as_ptr()
                    .ok_or(FailureKind::TypeConfusion)?
                    .ok_or(FailureKind::NullDeref)?;
                let i = i.as_int().ok_or(FailureKind::TypeConfusion)?;
                let slots = self.heap[obj.0 as usize]
                    .as_ref()
                    .ok_or(FailureKind::OutOfBounds)?;
                if i < 0 || i as usize >= slots.len() {
                    return Err(FailureKind::OutOfBounds);
                }
                Ok(ResolvedPlace::Heap(obj, i as u32))
            }
        }
    }

    fn memloc_of(&self, tid: ThreadId, frame_serial: u64, rp: ResolvedPlace) -> MemLoc {
        match rp {
            ResolvedPlace::Local(l) => MemLoc::Local {
                tid,
                frame: frame_serial,
                local: l,
            },
            ResolvedPlace::Global(g) => MemLoc::Global(g),
            ResolvedPlace::GlobalElem(g, i) => MemLoc::GlobalElem(g, i),
            ResolvedPlace::Heap(o, i) => MemLoc::Heap(o, i),
        }
    }

    fn store(&mut self, rp: ResolvedPlace, tid: ThreadId, v: Value) {
        match rp {
            ResolvedPlace::Local(l) => {
                let frame = self.threads[tid.0 as usize]
                    .frames
                    .last_mut()
                    .expect("live thread");
                frame.locals[l.0 as usize] = v;
            }
            ResolvedPlace::Global(g) => {
                Arc::make_mut(&mut self.globals)[g.0 as usize] = GSlot::Scalar(v);
            }
            ResolvedPlace::GlobalElem(g, i) => {
                if let GSlot::Array(slots) = &mut Arc::make_mut(&mut self.globals)[g.0 as usize] {
                    slots[i as usize] = v;
                }
            }
            ResolvedPlace::Heap(o, i) => {
                if let Some(slots) = &mut Arc::make_mut(&mut self.heap)[o.0 as usize] {
                    Arc::make_mut(slots)[i as usize] = v;
                }
            }
        }
    }

    /// Commits a drained store directly to shared memory (the TSO flush
    /// path). Locals are never buffered, so only shared locations occur.
    fn store_shared(&mut self, loc: MemLoc, v: Value) {
        match loc {
            MemLoc::Global(g) => Arc::make_mut(&mut self.globals)[g.0 as usize] = GSlot::Scalar(v),
            MemLoc::GlobalElem(g, i) => {
                if let GSlot::Array(slots) = &mut Arc::make_mut(&mut self.globals)[g.0 as usize] {
                    slots[i as usize] = v;
                }
            }
            MemLoc::Heap(o, i) => {
                if let Some(slots) = &mut Arc::make_mut(&mut self.heap)[o.0 as usize] {
                    Arc::make_mut(slots)[i as usize] = v;
                }
            }
            MemLoc::Local { .. } => unreachable!("locals are never buffered"),
        }
    }

    /// Routes a store through the memory model. Under SC — and for
    /// thread-local destinations in every model — the store commits
    /// immediately with a `Write` event, exactly as before. Under TSO a
    /// shared store enqueues in the thread's FIFO buffer
    /// (`StoreBuffered`); if the buffer is at capacity the oldest entry
    /// spills to memory first (`StoreFlushed`, no sync point — capacity
    /// pressure is not a scheduling event).
    fn store_or_buffer(
        &mut self,
        rp: ResolvedPlace,
        tid: ThreadId,
        frame_serial: u64,
        pc: Pc,
        v: Value,
        events: &mut Vec<Event>,
    ) {
        let loc = self.memloc_of(tid, frame_serial, rp);
        let cap = match self.mem_model.buffer_cap() {
            Some(cap) if loc.is_shared() => cap,
            _ => {
                self.store(rp, tid, v);
                events.push(Event::Write {
                    tid,
                    pc,
                    loc,
                    value: v,
                });
                return;
            }
        };
        let t = &mut self.threads[tid.0 as usize];
        if t.store_buffer.len() >= cap as usize {
            let old = t.store_buffer.remove(0);
            self.store_shared(old.loc, old.value);
            events.push(Event::StoreFlushed {
                tid,
                pc: old.pc,
                loc: old.loc,
                value: old.value,
            });
        }
        self.threads[tid.0 as usize]
            .store_buffer
            .push(BufferedStore { loc, value: v, pc });
        events.push(Event::StoreBuffered {
            tid,
            pc,
            loc,
            value: v,
        });
    }

    /// Drains `tid`'s store buffer to memory, oldest first, emitting one
    /// `StoreFlushed` per entry (each stamped with the pc that issued
    /// the store).
    fn drain_store_buffer(&mut self, tid: ThreadId, events: &mut Vec<Event>) {
        let buf = std::mem::take(&mut self.threads[tid.0 as usize].store_buffer);
        for b in buf {
            self.store_shared(b.loc, b.value);
            events.push(Event::StoreFlushed {
                tid,
                pc: b.pc,
                loc: b.loc,
                value: b.value,
            });
        }
    }

    /// Emits a [`SyncKind::Flush`] scheduling point (consuming a sync
    /// ordinal) and drains the buffer. With `always` false this is a
    /// no-op on an empty buffer — drain-forcing operations only become
    /// scheduling events when there is something to drain; `fence` passes
    /// true so it is a stable anchor in every model (including SC).
    fn flush(&mut self, tid: ThreadId, pc: Pc, always: bool, events: &mut Vec<Event>) {
        if !always && self.threads[tid.0 as usize].store_buffer.is_empty() {
            return;
        }
        let t = &mut self.threads[tid.0 as usize];
        let seq = t.sync_seq;
        t.sync_seq += 1;
        events.push(Event::Sync {
            tid,
            pc,
            kind: SyncKind::Flush,
            seq,
        });
        self.drain_store_buffer(tid, events);
    }

    /// Executes one statement of thread `tid`.
    ///
    /// Returns `false` when the thread could not step (not runnable, done,
    /// or the run already failed); the VM is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn step(&mut self, tid: ThreadId, obs: &mut dyn Observer) -> bool {
        if !self.runnable(tid) {
            return false;
        }
        for ev in std::mem::take(&mut self.pending_events) {
            obs.on_event(self.steps, &ev);
        }
        let step = self.steps;
        self.steps += 1;

        let program = self.program;
        let (func_id, frame_pc) = {
            let frame = self.threads[tid.0 as usize]
                .frames
                .last()
                .expect("runnable thread has a frame");
            (frame.func, frame.pc)
        };
        // `func` and `inst` borrow the program (lifetime `'p`), not the
        // VM, so the statement body below runs without cloning the
        // instruction.
        let func = program.func(func_id);
        let pc = Pc::new(func_id, frame_pc);
        let inst = func.inst(frame_pc);

        // Instruction accounting.
        let cost: u8 = match inst {
            Inst::LoopEnter { loop_id } | Inst::LoopIter { loop_id } => {
                let natural = func.loops[loop_id.0 as usize].natural;
                if natural || !self.count_loop_instr {
                    0
                } else {
                    1
                }
            }
            _ => 1,
        };
        self.instrs += cost as u64;
        self.threads[tid.0 as usize].instrs += cost as u64;
        self.threads[tid.0 as usize].steps_taken += 1;

        obs.on_event(step, &Event::Stmt { tid, pc, cost });

        // Reuse the scratch buffers so stepping never allocates once the
        // buffers have grown to the run's high-water mark.
        let mut reads = std::mem::take(&mut self.reads_buf);
        let mut events = std::mem::take(&mut self.events_buf);
        debug_assert!(reads.is_empty() && events.is_empty());
        // Direct-threaded dispatch: monomorphize the statement executor
        // on plan presence. The `PLANNED = false` body is bit-for-bit
        // the legacy interpreter (every plan consult compiles out); the
        // `PLANNED = true` body reads pre-decoded operands from the
        // dispatch table in its hot arms.
        let result = if self.plan.is_some() {
            self.exec_inst::<true>(tid, pc, inst, &mut reads, &mut events, step, obs)
        } else {
            self.exec_inst::<false>(tid, pc, inst, &mut reads, &mut events, step, obs)
        };
        for (loc, value) in reads.drain(..) {
            obs.on_event(
                step,
                &Event::Read {
                    tid,
                    pc,
                    loc,
                    value,
                },
            );
        }
        match result {
            Ok(()) => {
                for eff in events.drain(..) {
                    obs.on_event(step, &eff);
                }
            }
            Err(kind) => {
                // Partial effects of the crashing statement are discarded,
                // exactly as before: only the crash is observed.
                events.clear();
                let failure = Failure {
                    kind,
                    pc,
                    thread: tid,
                    fault: self.pending_fault.take(),
                };
                self.failure = Some(failure);
                self.threads[tid.0 as usize].state = ThreadState::Crashed;
                obs.on_event(step, &Event::Crash { failure });
            }
        }
        self.reads_buf = reads;
        self.events_buf = events;
        true
    }

    /// The pre-decoded op for `pc`, when a dispatch plan is attached.
    #[inline]
    fn plan_op(&self, pc: Pc) -> Option<Op> {
        self.plan.as_ref().map(|plan| plan.op(pc.func, pc.stmt))
    }

    /// Evaluates a pre-decoded right-hand side, mirroring [`Vm::eval`]
    /// on the corresponding expression shape exactly (same reads, same
    /// failure kinds, same semantics via [`Vm::binop`]).
    fn eval_rhs(
        &self,
        thread: &Thread,
        frame: &Frame,
        rhs: Rhs,
        reads: &mut Vec<(MemLoc, Value)>,
    ) -> Result<Value, FailureKind> {
        match rhs {
            Rhs::Const(v) => Ok(v),
            Rhs::Local(l) => {
                let v = frame.locals[l.0 as usize];
                reads.push((
                    MemLoc::Local {
                        tid: thread.id,
                        frame: frame.serial,
                        local: l,
                    },
                    v,
                ));
                Ok(v)
            }
            Rhs::Global(g) => match &self.globals[g.0 as usize] {
                GSlot::Scalar(v) => {
                    let v = Self::snoop(thread, MemLoc::Global(g)).unwrap_or(*v);
                    reads.push((MemLoc::Global(g), v));
                    Ok(v)
                }
                GSlot::Array(_) => Err(FailureKind::TypeConfusion),
            },
            Rhs::LocalBin(l, op, k) => {
                let v = self.eval_rhs(thread, frame, Rhs::Local(l), reads)?;
                self.binop(op, v, Value::Int(k))
            }
            Rhs::GlobalBin(g, op, k) => {
                let v = self.eval_rhs(thread, frame, Rhs::Global(g), reads)?;
                self.binop(op, v, Value::Int(k))
            }
            Rhs::Expr(idx) => {
                let plan = self
                    .plan
                    .as_ref()
                    .expect("Rhs::Expr ops only come from an attached plan");
                self.eval_tokens(thread, frame, plan.expr(idx), reads)
            }
        }
    }

    /// Evaluates a pre-flattened postfix token run. Tokens execute left
    /// to right — the exact operand order of the recursive [`Vm::eval`]
    /// (which is eager for every operator) — so the read-event stream
    /// and the first failure are identical by construction.
    fn eval_tokens(
        &self,
        thread: &Thread,
        frame: &Frame,
        toks: &[crate::plan::Tok],
        reads: &mut Vec<(MemLoc, Value)>,
    ) -> Result<Value, FailureKind> {
        use crate::plan::{Tok, EXPR_STACK};
        let mut stack = [Value::NULL; EXPR_STACK];
        let mut sp = 0usize;
        for tok in toks {
            match *tok {
                Tok::Const(v) => {
                    stack[sp] = v;
                    sp += 1;
                }
                Tok::Local(l) => {
                    let v = frame.locals[l.0 as usize];
                    reads.push((
                        MemLoc::Local {
                            tid: thread.id,
                            frame: frame.serial,
                            local: l,
                        },
                        v,
                    ));
                    stack[sp] = v;
                    sp += 1;
                }
                Tok::Global(g) => match &self.globals[g.0 as usize] {
                    GSlot::Scalar(v) => {
                        let v = Self::snoop(thread, MemLoc::Global(g)).unwrap_or(*v);
                        reads.push((MemLoc::Global(g), v));
                        stack[sp] = v;
                        sp += 1;
                    }
                    GSlot::Array(_) => return Err(FailureKind::TypeConfusion),
                },
                Tok::Un(op) => {
                    let v = stack[sp - 1];
                    stack[sp - 1] = match op {
                        UnOp::Not => Value::from(!v.truthy()),
                        UnOp::Neg => {
                            let v = v.as_int().ok_or(FailureKind::TypeConfusion)?;
                            Value::Int(v.wrapping_neg())
                        }
                    };
                }
                Tok::Bin(op) => {
                    sp -= 1;
                    stack[sp - 1] = self.binop(op, stack[sp - 1], stack[sp])?;
                }
            }
        }
        Ok(stack[sp - 1])
    }

    /// Executes the statement body, pushing the detail events to emit
    /// after the reads into `events`. On `Err` the thread crashes at
    /// `pc` (and the caller discards any partial events).
    #[allow(clippy::too_many_arguments)]
    fn exec_inst<const PLANNED: bool>(
        &mut self,
        tid: ThreadId,
        pc: Pc,
        inst: &Inst,
        reads: &mut Vec<(MemLoc, Value)>,
        events: &mut Vec<Event>,
        _step: u64,
        _obs: &mut dyn Observer,
    ) -> Result<(), FailureKind> {
        macro_rules! cur_frame {
            () => {
                self.threads[tid.0 as usize]
                    .frames
                    .last()
                    .expect("live thread")
            };
        }
        macro_rules! advance {
            () => {{
                let f = self.threads[tid.0 as usize]
                    .frames
                    .last_mut()
                    .expect("live thread");
                f.pc = StmtId(f.pc.0 + 1);
            }};
        }

        match inst {
            Inst::Assign { dst, src } => {
                let (v, rp) = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    // Direct-threaded fast path: the dispatch plan holds
                    // the statement's pre-decoded source operand, so the
                    // boxed `Expr` tree is never walked. Reads, failure
                    // kinds, and semantics are identical by construction
                    // (`eval_rhs` mirrors `eval` shape by shape).
                    let v = match if PLANNED { self.plan_op(pc) } else { None } {
                        Some(Op::Assign { src, .. }) => self.eval_rhs(thread, frame, src, reads)?,
                        _ => self.eval(thread, frame, src, reads)?,
                    };
                    let rp = self.resolve_place(thread, frame, dst, reads)?;
                    (v, rp)
                };
                let serial = cur_frame!().serial;
                self.store_or_buffer(rp, tid, serial, pc, v, events);
                self.threads[tid.0 as usize].last_value = v;
                advance!();
            }
            Inst::Branch {
                cond,
                then_to,
                else_to,
                ..
            } => {
                let outcome = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    // Fused load+compare+branch superinstruction (or any
                    // pre-decoded condition) from the dispatch plan.
                    match if PLANNED { self.plan_op(pc) } else { None } {
                        Some(Op::Branch { cond, .. }) => {
                            self.eval_rhs(thread, frame, cond, reads)?.truthy()
                        }
                        _ => self.eval(thread, frame, cond, reads)?.truthy(),
                    }
                };
                events.push(Event::Branch { tid, pc, outcome });
                let target = if outcome { *then_to } else { *else_to };
                let f = self.threads[tid.0 as usize]
                    .frames
                    .last_mut()
                    .expect("live thread");
                f.pc = target;
            }
            Inst::Jump { to } => {
                let f = self.threads[tid.0 as usize]
                    .frames
                    .last_mut()
                    .expect("live thread");
                f.pc = *to;
            }
            Inst::Call { callee, args, dst } => {
                let (vals, rp) = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(thread, frame, a, reads)?);
                    }
                    let rp = match dst {
                        Some(d) => Some(self.resolve_place(thread, frame, d, reads)?),
                        None => None,
                    };
                    (vals, rp)
                };
                if self.threads[tid.0 as usize].frames.len() >= MAX_FRAMES {
                    return Err(FailureKind::StackOverflow);
                }
                let func = self.program.func(*callee);
                let mut locals = vec![Value::default(); func.local_count()];
                for (slot, v) in locals.iter_mut().zip(vals.iter()) {
                    *slot = *v;
                }
                let serial = self.next_frame_serial;
                self.next_frame_serial += 1;
                self.threads[tid.0 as usize].frames.push(Frame {
                    func: *callee,
                    pc: StmtId(0),
                    locals,
                    loop_counters: vec![0; func.loops.len()],
                    serial,
                    ret_dst: rp,
                });
                events.push(Event::FuncEnter {
                    tid,
                    func: *callee,
                    frame: serial,
                });
            }
            Inst::Return { value } => {
                let v = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    match value {
                        Some(e) => Some(self.eval(thread, frame, e, reads)?),
                        None => None,
                    }
                };
                let popped = self.threads[tid.0 as usize]
                    .frames
                    .pop()
                    .expect("live thread");
                events.push(Event::FuncExit {
                    tid,
                    func: popped.func,
                    frame: popped.serial,
                });
                if self.threads[tid.0 as usize].frames.is_empty() {
                    // A thread's stores become visible no later than its
                    // exit (as joining it must observe them).
                    self.flush(tid, pc, false, events);
                    self.threads[tid.0 as usize].state = ThreadState::Done;
                    events.push(Event::ThreadEnd { tid });
                } else {
                    if let (Some(rp), Some(v)) = (popped.ret_dst, v) {
                        let caller_pc = {
                            let f = cur_frame!();
                            Pc::new(f.func, f.pc)
                        };
                        let serial = cur_frame!().serial;
                        self.store_or_buffer(rp, tid, serial, caller_pc, v, events);
                        self.threads[tid.0 as usize].last_value = v;
                    }
                    advance!();
                }
            }
            Inst::Acquire { lock } => {
                // Every acquire attempt consumes the thread's acquire
                // ordinal (the schedule-independent key lock-timeout
                // injection matches on), faulting or not.
                let nth = self.threads[tid.0 as usize].acquire_seq;
                self.threads[tid.0 as usize].acquire_seq += 1;
                if self.locks[lock.0 as usize].is_some() {
                    // Only an injected timeout makes a blocked acquire
                    // runnable (see `runnable`). Crash before draining:
                    // the dump shows the buffer frozen mid-flight.
                    let fault = self.fault_for(FaultKind::LockTimeout, tid, nth);
                    debug_assert!(fault.is_some(), "blocked acquire stepped without a fault");
                    self.pending_fault = fault;
                    return Err(FailureKind::LockTimeout);
                }
                self.flush(tid, pc, false, events);
                self.locks[lock.0 as usize] = Some(tid);
                let seq = self.threads[tid.0 as usize].sync_seq;
                self.threads[tid.0 as usize].sync_seq += 1;
                events.push(Event::Sync {
                    tid,
                    pc,
                    kind: SyncKind::Acquire(*lock),
                    seq,
                });
                advance!();
            }
            Inst::Release { lock } => {
                if self.locks[lock.0 as usize] != Some(tid) {
                    return Err(FailureKind::LockMisuse);
                }
                self.flush(tid, pc, false, events);
                self.locks[lock.0 as usize] = None;
                let seq = self.threads[tid.0 as usize].sync_seq;
                self.threads[tid.0 as usize].sync_seq += 1;
                events.push(Event::Sync {
                    tid,
                    pc,
                    kind: SyncKind::Release(*lock),
                    seq,
                });
                advance!();
            }
            Inst::Spawn { callee, args, dst } => {
                let (vals, rp) = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(thread, frame, a, reads)?);
                    }
                    let rp = match dst {
                        Some(d) => Some(self.resolve_place(thread, frame, d, reads)?),
                        None => None,
                    };
                    (vals, rp)
                };
                self.flush(tid, pc, false, events);
                let child = self.spawn_thread(*callee, vals);
                let child_frame = self.threads[child.0 as usize]
                    .frames
                    .last()
                    .expect("fresh thread")
                    .serial;
                let seq = self.threads[tid.0 as usize].sync_seq;
                self.threads[tid.0 as usize].sync_seq += 1;
                events.push(Event::Sync {
                    tid,
                    pc,
                    kind: SyncKind::Spawn(child),
                    seq,
                });
                events.push(Event::ThreadStart {
                    tid: child,
                    func: *callee,
                });
                events.push(Event::FuncEnter {
                    tid: child,
                    func: *callee,
                    frame: child_frame,
                });
                if let Some(rp) = rp {
                    let serial = cur_frame!().serial;
                    let v = Value::Int(child.0 as i64);
                    self.store_or_buffer(rp, tid, serial, pc, v, events);
                }
                advance!();
            }
            Inst::Join { thread: te } => {
                let v = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    self.eval(thread, frame, te, reads)?
                };
                let target = v.as_int().ok_or(FailureKind::TypeConfusion)?;
                if target < 0 || target as usize >= self.threads.len() {
                    return Err(FailureKind::JoinInvalid);
                }
                let target = ThreadId(target as u32);
                debug_assert_ne!(
                    self.threads[target.0 as usize].state,
                    ThreadState::Ready,
                    "runnable() only admits joins on finished threads"
                );
                self.flush(tid, pc, false, events);
                let seq = self.threads[tid.0 as usize].sync_seq;
                self.threads[tid.0 as usize].sync_seq += 1;
                events.push(Event::Sync {
                    tid,
                    pc,
                    kind: SyncKind::Join(target),
                    seq,
                });
                advance!();
            }
            Inst::Alloc { dst, len } => {
                let (n, rp) = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    let n = self
                        .eval(thread, frame, len, reads)?
                        .as_int()
                        .ok_or(FailureKind::TypeConfusion)?;
                    let rp = self.resolve_place(thread, frame, dst, reads)?;
                    (n, rp)
                };
                // Every attempt consumes the thread's alloc ordinal (the
                // schedule-independent key alloc-failure injection
                // matches on), before any size validation.
                let nth = self.threads[tid.0 as usize].alloc_seq;
                self.threads[tid.0 as usize].alloc_seq += 1;
                let v = match self.fault_for(FaultKind::AllocFail, tid, nth) {
                    Some(fault) => {
                        // Injected allocation failure: the program sees
                        // null and runs its recovery path. Non-fatal; the
                        // fault identity sticks to any later crash.
                        self.pending_fault = Some(fault);
                        Value::NULL
                    }
                    None => {
                        if !(0..=MAX_ALLOC).contains(&n) {
                            return Err(FailureKind::AllocTooLarge);
                        }
                        let obj = ObjId(self.heap.len() as u32);
                        Arc::make_mut(&mut self.heap)
                            .push(Some(Arc::new(vec![Value::default(); n as usize])));
                        Value::Ptr(Some(obj))
                    }
                };
                let serial = cur_frame!().serial;
                self.store_or_buffer(rp, tid, serial, pc, v, events);
                self.threads[tid.0 as usize].last_value = v;
                advance!();
            }
            Inst::Assert { cond } => {
                let ok = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    self.eval(thread, frame, cond, reads)?.truthy()
                };
                if !ok {
                    return Err(FailureKind::AssertFailed);
                }
                advance!();
            }
            Inst::Output { value } => {
                let v = {
                    let thread = &self.threads[tid.0 as usize];
                    let frame = thread.frames.last().expect("live thread");
                    self.eval(thread, frame, value, reads)?
                };
                self.outputs.push(v);
                events.push(Event::Output { tid, value: v });
                advance!();
            }
            Inst::LoopEnter { loop_id } => {
                let f = self.threads[tid.0 as usize]
                    .frames
                    .last_mut()
                    .expect("live thread");
                f.loop_counters[loop_id.0 as usize] = 0;
                events.push(Event::LoopEnter {
                    tid,
                    pc,
                    loop_id: *loop_id,
                });
                advance!();
            }
            Inst::LoopIter { loop_id } => {
                let f = self.threads[tid.0 as usize]
                    .frames
                    .last_mut()
                    .expect("live thread");
                f.loop_counters[loop_id.0 as usize] += 1;
                let count = f.loop_counters[loop_id.0 as usize];
                events.push(Event::LoopIter {
                    tid,
                    pc,
                    loop_id: *loop_id,
                    count,
                });
                advance!();
            }
            Inst::Fence => {
                // A fence drains the buffer and is a scheduling anchor in
                // *every* model (the sync point is emitted even when the
                // buffer is empty), so a fence inside a critical section
                // gives the search a stable preemption point under SC too.
                self.flush(tid, pc, true, events);
                advance!();
            }
            Inst::Nop => {
                advance!();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NullObserver, Recorder};

    fn vm_for<'p>(p: &'p Program, input: &[i64]) -> Vm<'p> {
        Vm::new(p, input)
    }

    /// Steps thread 0 to completion (single-threaded programs).
    fn run_main(vm: &mut Vm, obs: &mut dyn Observer) {
        let t0 = ThreadId(0);
        let mut guard = 0;
        while vm.runnable(t0) {
            vm.step(t0, obs);
            guard += 1;
            assert!(guard < 100_000, "runaway test program");
        }
    }

    #[test]
    fn arithmetic_and_globals() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 2 * 3 + 4; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(10)));
        assert!(vm.failure().is_none());
        assert!(vm.all_done());
    }

    #[test]
    fn input_wiring() {
        let p = mcr_lang::compile(
            "global input: [int; 4]; global input_len: int; global x: int; fn main() { x = input[1] + input_len; }",
        )
        .unwrap();
        let mut vm = vm_for(&p, &[10, 20]);
        run_main(&mut vm, &mut NullObserver);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(22)));
    }

    #[test]
    fn loops_and_counters() {
        let p = mcr_lang::compile(
            "global n: int; fn main() { var i; while (i < 5) { i = i + 1; } n = i; }",
        )
        .unwrap();
        let mut vm = vm_for(&p, &[]);
        let mut rec = Recorder::default();
        run_main(&mut vm, &mut rec);
        let g = p.global_by_name("n").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(5)));
        // Counter reached 5.
        let max_count = rec
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::LoopIter { count, .. } => Some(*count),
                _ => None,
            })
            .max();
        assert_eq!(max_count, Some(5));
    }

    #[test]
    fn instrumentation_cost_toggle() {
        let src = "global n: int; fn main() { var i; while (i < 50) { i = i + 1; } }";
        let p = mcr_lang::compile(src).unwrap();

        let mut on = vm_for(&p, &[]);
        on.set_count_loop_instr(true);
        run_main(&mut on, &mut NullObserver);

        let mut off = vm_for(&p, &[]);
        off.set_count_loop_instr(false);
        run_main(&mut off, &mut NullObserver);

        // Instrumented run retires more instructions (enter + 50 iters).
        assert_eq!(on.instrs(), off.instrs() + 51);
        // But executes the same statements.
        assert_eq!(on.steps(), off.steps());
    }

    #[test]
    fn natural_loops_cost_nothing() {
        let src =
            "global n: int; fn main() { var i; for (i = 0; i < 50; i = i + 1) { n = n + 1; } }";
        let p = mcr_lang::compile(src).unwrap();
        let mut on = vm_for(&p, &[]);
        on.set_count_loop_instr(true);
        run_main(&mut on, &mut NullObserver);
        let mut off = vm_for(&p, &[]);
        off.set_count_loop_instr(false);
        run_main(&mut off, &mut NullObserver);
        assert_eq!(on.instrs(), off.instrs());
    }

    #[test]
    fn null_deref_crashes_and_freezes() {
        let p = mcr_lang::compile("fn main() { var p; p = null; p[0] = 1; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        let f = vm.failure().expect("crash");
        assert_eq!(f.kind, FailureKind::NullDeref);
        // The crashing thread's pc still points at the faulting statement.
        let t = vm.thread(ThreadId(0));
        assert_eq!(t.state, ThreadState::Crashed);
        assert_eq!(t.pc().unwrap(), f.pc);
    }

    #[test]
    fn assert_failure() {
        let p = mcr_lang::compile("fn main() { assert(1 == 2); }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.failure().unwrap().kind, FailureKind::AssertFailed);
    }

    #[test]
    fn div_by_zero() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 1 / (x - x); }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.failure().unwrap().kind, FailureKind::DivByZero);
    }

    #[test]
    fn calls_and_returns() {
        let p = mcr_lang::compile(
            "global x: int; fn add(a, b) { return a + b; } fn main() { x = add(20, 22); }",
        )
        .unwrap();
        let mut vm = vm_for(&p, &[]);
        let mut rec = Recorder::default();
        run_main(&mut vm, &mut rec);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(42)));
        // Enter and exit both observed.
        assert!(rec
            .events
            .iter()
            .any(|(_, e)| matches!(e, Event::FuncEnter { .. })));
        assert!(rec
            .events
            .iter()
            .any(|(_, e)| matches!(e, Event::FuncExit { .. })));
    }

    #[test]
    fn recursion_overflows() {
        let p = mcr_lang::compile("fn r() { r(); } fn main() { r(); }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.failure().unwrap().kind, FailureKind::StackOverflow);
    }

    #[test]
    fn heap_alloc_and_access() {
        let p = mcr_lang::compile(
            "global x: int; fn main() { var p; p = alloc(3); p[2] = 9; x = p[2]; }",
        )
        .unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(9)));
        assert_eq!(vm.heap_objects().count(), 1);
    }

    #[test]
    fn heap_out_of_bounds() {
        let p = mcr_lang::compile("fn main() { var p; p = alloc(2); p[5] = 1; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.failure().unwrap().kind, FailureKind::OutOfBounds);
    }

    #[test]
    fn spawn_and_lock_blocking() {
        let src = r#"
            global x: int;
            lock l;
            fn worker() { acquire l; x = x + 1; release l; }
            fn main() {
                var t;
                acquire l;
                t = spawn worker();
                x = 10;
                release l;
                join t;
            }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        let mut vm = vm_for(&p, &[]);
        let main = ThreadId(0);
        // Drive main through `acquire l` and `spawn worker()` so it holds
        // the lock while the worker exists.
        for _ in 0..2 {
            vm.step(main, &mut NullObserver);
        }
        let worker = ThreadId(1);
        assert_eq!(vm.threads().len(), 2);
        // Worker's next statement is acquire of a held lock: not runnable.
        assert!(!vm.runnable(worker));
        // Main is not blocked.
        assert!(vm.runnable(main));
        // Finish main's critical section.
        while vm.runnable(main) {
            vm.step(main, &mut NullObserver);
        }
        // Main is now blocked on join; worker can run.
        assert!(vm.runnable(worker));
        while vm.runnable(worker) {
            vm.step(worker, &mut NullObserver);
        }
        assert!(vm.runnable(main));
        while vm.runnable(main) {
            vm.step(main, &mut NullObserver);
        }
        assert!(vm.all_done());
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(11)));
    }

    #[test]
    fn release_without_hold_fails() {
        let p = mcr_lang::compile("lock l; fn main() { release l; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.failure().unwrap().kind, FailureKind::LockMisuse);
    }

    #[test]
    fn sync_seq_increments() {
        let p =
            mcr_lang::compile("lock l; fn main() { acquire l; release l; acquire l; release l; }")
                .unwrap();
        let mut vm = vm_for(&p, &[]);
        let mut rec = Recorder::default();
        run_main(&mut vm, &mut rec);
        let seqs: Vec<u32> = rec
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Event::Sync { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pointer_comparisons() {
        let p = mcr_lang::compile(
            "global x: int; fn main() { var p; if (p == null) { x = 1; } p = alloc(1); if (p != null) { x = x + 2; } }",
        )
        .unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(3)));
    }

    #[test]
    fn clone_checkpoints_are_independent() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 1; x = 2; x = 3; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        vm.step(ThreadId(0), &mut NullObserver);
        let checkpoint = vm.clone();
        run_main(&mut vm, &mut NullObserver);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(vm.globals()[g.0 as usize], GSlot::Scalar(Value::Int(3)));
        assert_eq!(
            checkpoint.globals()[g.0 as usize],
            GSlot::Scalar(Value::Int(1))
        );
    }

    #[test]
    fn outputs_are_recorded() {
        let p = mcr_lang::compile("fn main() { output(7); output(8); }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.outputs(), &[Value::Int(7), Value::Int(8)]);
    }

    #[test]
    fn shared_reads_and_writes_are_observed() {
        let p = mcr_lang::compile("global x: int; fn main() { x = x + 1; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        let mut rec = Recorder::default();
        run_main(&mut vm, &mut rec);
        let g = p.global_by_name("x").unwrap();
        assert!(rec.events.iter().any(|(_, e)| matches!(
            e,
            Event::Read { loc: MemLoc::Global(gg), .. } if *gg == g
        )));
        assert!(rec.events.iter().any(|(_, e)| matches!(
            e,
            Event::Write { loc: MemLoc::Global(gg), .. } if *gg == g
        )));
    }

    #[test]
    fn dispatch_plan_runs_bit_identical_to_legacy() {
        use crate::plan::DispatchPlan;
        use crate::sched::{run, DeterministicScheduler, StressScheduler};

        // Exercises every fast-path op plus slow-path fallbacks
        // (call/return/spawn/join/alloc/output) under contention.
        let src = r#"
            global x: int;
            global a: [int; 4];
            global head: ptr;
            lock l;
            fn bump(d) {
                acquire l;
                x = x + d;
                release l;
                return x;
            }
            fn worker(k) {
                var i; var p;
                while (i < 6) {
                    i = i + 1;
                    a[(k + i) % 4] = bump(i);
                    if (i == 3) {
                        p = alloc(2);
                        p[0] = i;
                        head = p;
                    }
                }
                output(x);
            }
            fn main() {
                var t; var u;
                t = spawn worker(1);
                u = spawn worker(2);
                worker(0);
                join t;
                join u;
            }
        "#;
        let p = mcr_lang::compile(src).unwrap();
        let plan = Arc::new(DispatchPlan::compile(&p));
        assert!(plan.stats().fused > 0, "the loop must compile to fused ops");

        let mut schedules: Vec<Box<dyn FnMut() -> Box<dyn crate::sched::Scheduler>>> =
            vec![Box::new(|| Box::new(DeterministicScheduler::new()))];
        for seed in [1u64, 7, 42, 1337] {
            schedules.push(Box::new(move || Box::new(StressScheduler::new(seed))));
        }
        for make in &mut schedules {
            let mut legacy_vm = Vm::new(&p, &[]);
            let mut legacy_rec = Recorder::default();
            run(&mut legacy_vm, &mut *make(), &mut legacy_rec, 1_000_000);

            let mut fast_vm = Vm::new(&p, &[]).with_plan(Arc::clone(&plan));
            let mut fast_rec = Recorder::default();
            run(&mut fast_vm, &mut *make(), &mut fast_rec, 1_000_000);

            assert_eq!(legacy_rec.events, fast_rec.events);
            assert_eq!(legacy_vm.steps(), fast_vm.steps());
            assert_eq!(legacy_vm.instrs(), fast_vm.instrs());
            assert_eq!(legacy_vm.outputs(), fast_vm.outputs());
            assert_eq!(legacy_vm.failure(), fast_vm.failure());
            assert_eq!(legacy_vm.globals(), fast_vm.globals());
        }
    }

    #[test]
    fn dispatch_plan_crashes_identically() {
        use crate::plan::DispatchPlan;

        // Fast-path failures: release without hold (Op::Release) and a
        // fused div-by-zero (Rhs::GlobalBin) freeze exactly like legacy.
        for src in [
            "lock l; fn main() { release l; }",
            "global x: int; fn main() { x = x / 0; }",
        ] {
            let p = mcr_lang::compile(src).unwrap();
            let plan = Arc::new(DispatchPlan::compile(&p));

            let mut legacy_vm = vm_for(&p, &[]);
            let mut legacy_rec = Recorder::default();
            run_main(&mut legacy_vm, &mut legacy_rec);

            let mut fast_vm = Vm::new(&p, &[]).with_plan(plan);
            let mut fast_rec = Recorder::default();
            run_main(&mut fast_vm, &mut fast_rec);

            assert_eq!(legacy_rec.events, fast_rec.events, "{src}");
            assert_eq!(legacy_vm.failure(), fast_vm.failure(), "{src}");
            let (lt, ft) = (legacy_vm.thread(ThreadId(0)), fast_vm.thread(ThreadId(0)));
            assert_eq!(lt.state, ft.state, "{src}");
            assert_eq!(lt.pc(), ft.pc(), "{src}");
        }
    }

    #[test]
    fn plan_survives_checkpoint_clones() {
        use crate::plan::DispatchPlan;
        let p = mcr_lang::compile("global x: int; fn main() { x = 1; x = 2; x = 3; }").unwrap();
        let plan = Arc::new(DispatchPlan::compile(&p));
        let mut vm = Vm::new(&p, &[]).with_plan(plan);
        vm.step(ThreadId(0), &mut NullObserver);
        let mut checkpoint = vm.clone();
        assert!(checkpoint.plan().is_some(), "clones keep the plan");
        run_main(&mut checkpoint, &mut NullObserver);
        let g = p.global_by_name("x").unwrap();
        assert_eq!(
            checkpoint.globals()[g.0 as usize],
            GSlot::Scalar(Value::Int(3))
        );
    }

    #[test]
    fn global_array_oob_crashes() {
        let p = mcr_lang::compile("global a: [int; 2]; fn main() { a[7] = 1; }").unwrap();
        let mut vm = vm_for(&p, &[]);
        run_main(&mut vm, &mut NullObserver);
        assert_eq!(vm.failure().unwrap().kind, FailureKind::GlobalOutOfBounds);
    }
}
