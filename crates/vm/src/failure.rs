//! Failure descriptions — what a crash "is" for reproduction purposes.
//!
//! Two runs exhibit *the same failure* when they crash with the same
//! [`FailureKind`] at the same program counter in the same thread role.
//! This is the oracle the schedule search uses to decide that a candidate
//! schedule reproduced the bug.

use crate::value::ThreadId;
use mcr_lang::Pc;
use std::fmt;

/// The kind of crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Dereference of a null pointer.
    NullDeref,
    /// Heap access outside an object's bounds.
    OutOfBounds,
    /// Index into a global array outside its bounds.
    GlobalOutOfBounds,
    /// `assert(..)` evaluated to false.
    AssertFailed,
    /// Integer division or modulo by zero.
    DivByZero,
    /// A pointer was used where an integer was required, or vice versa.
    TypeConfusion,
    /// `release` of a lock the thread does not hold.
    LockMisuse,
    /// `join` on an invalid thread id.
    JoinInvalid,
    /// Call stack exceeded the frame limit.
    StackOverflow,
    /// Allocation request exceeded the heap object size limit.
    AllocTooLarge,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::NullDeref => "null pointer dereference",
            FailureKind::OutOfBounds => "heap access out of bounds",
            FailureKind::GlobalOutOfBounds => "global array index out of bounds",
            FailureKind::AssertFailed => "assertion failed",
            FailureKind::DivByZero => "division by zero",
            FailureKind::TypeConfusion => "type confusion",
            FailureKind::LockMisuse => "lock released by non-owner",
            FailureKind::JoinInvalid => "join on invalid thread id",
            FailureKind::StackOverflow => "stack overflow",
            FailureKind::AllocTooLarge => "allocation too large",
        };
        f.write_str(s)
    }
}

/// A concrete crash: kind, location, and crashing thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Where (the failure PC of the paper).
    pub pc: Pc,
    /// Which thread crashed.
    pub thread: ThreadId,
}

impl Failure {
    /// Whether another failure is "the same bug": same kind at the same
    /// program counter. The thread id is deliberately ignored — thread
    /// numbering can differ between a stress run and a replay.
    pub fn same_bug(&self, other: &Failure) -> bool {
        self.kind == other.kind && self.pc == other.pc
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} in {}", self.kind, self.pc, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::{FuncId, StmtId};

    #[test]
    fn same_bug_ignores_thread() {
        let pc = Pc::new(FuncId(1), StmtId(4));
        let a = Failure {
            kind: FailureKind::NullDeref,
            pc,
            thread: ThreadId(1),
        };
        let b = Failure {
            kind: FailureKind::NullDeref,
            pc,
            thread: ThreadId(2),
        };
        assert!(a.same_bug(&b));
        let c = Failure {
            kind: FailureKind::AssertFailed,
            ..a
        };
        assert!(!a.same_bug(&c));
    }

    #[test]
    fn display_is_informative() {
        let f = Failure {
            kind: FailureKind::NullDeref,
            pc: Pc::new(FuncId(0), StmtId(2)),
            thread: ThreadId(1),
        };
        let s = f.to_string();
        assert!(s.contains("null pointer"), "{s}");
        assert!(s.contains("t1"), "{s}");
    }
}
