//! Failure descriptions — what a crash "is" for reproduction purposes.
//!
//! Two runs exhibit *the same failure* when they crash with the same
//! [`FailureKind`] at the same program counter in the same thread role,
//! under the same injected fault (if any). This is the oracle the
//! schedule search uses to decide that a candidate schedule reproduced
//! the bug.

use crate::memmodel::InjectedFault;
use crate::value::ThreadId;
use mcr_lang::Pc;
use std::fmt;

/// The kind of crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Dereference of a null pointer.
    NullDeref,
    /// Heap access outside an object's bounds.
    OutOfBounds,
    /// Index into a global array outside its bounds.
    GlobalOutOfBounds,
    /// `assert(..)` evaluated to false.
    AssertFailed,
    /// Integer division or modulo by zero.
    DivByZero,
    /// A pointer was used where an integer was required, or vice versa.
    TypeConfusion,
    /// `release` of a lock the thread does not hold.
    LockMisuse,
    /// `join` on an invalid thread id.
    JoinInvalid,
    /// Call stack exceeded the frame limit.
    StackOverflow,
    /// Allocation request exceeded the heap object size limit.
    AllocTooLarge,
    /// Lock acquisition timed out (injected via
    /// [`crate::FaultKind::LockTimeout`]).
    LockTimeout,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureKind::NullDeref => "null pointer dereference",
            FailureKind::OutOfBounds => "heap access out of bounds",
            FailureKind::GlobalOutOfBounds => "global array index out of bounds",
            FailureKind::AssertFailed => "assertion failed",
            FailureKind::DivByZero => "division by zero",
            FailureKind::TypeConfusion => "type confusion",
            FailureKind::LockMisuse => "lock released by non-owner",
            FailureKind::JoinInvalid => "join on invalid thread id",
            FailureKind::StackOverflow => "stack overflow",
            FailureKind::AllocTooLarge => "allocation too large",
            FailureKind::LockTimeout => "lock acquisition timed out",
        };
        f.write_str(s)
    }
}

/// A concrete crash: kind, location, and crashing thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Where (the failure PC of the paper).
    pub pc: Pc,
    /// Which thread crashed.
    pub thread: ThreadId,
    /// The injected fault that caused (or contributed to) the crash, if
    /// any. Part of the bug's identity: the same crash kind/pc reached
    /// via different injected faults is a different bug.
    pub fault: Option<InjectedFault>,
}

impl Failure {
    /// Whether another failure is "the same bug": same kind at the same
    /// program counter, caused by the same injected fault (if any). The
    /// thread id is deliberately ignored — thread numbering can differ
    /// between a stress run and a replay.
    pub fn same_bug(&self, other: &Failure) -> bool {
        self.kind == other.kind && self.pc == other.pc && self.fault == other.fault
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} in {}", self.kind, self.pc, self.thread)?;
        if let Some(fault) = &self.fault {
            write!(f, " (injected {} #{})", fault.kind, fault.nth)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmodel::FaultKind;
    use mcr_lang::{FuncId, StmtId};

    #[test]
    fn same_bug_ignores_thread() {
        let pc = Pc::new(FuncId(1), StmtId(4));
        let a = Failure {
            kind: FailureKind::NullDeref,
            pc,
            thread: ThreadId(1),
            fault: None,
        };
        let b = Failure {
            kind: FailureKind::NullDeref,
            pc,
            thread: ThreadId(2),
            fault: None,
        };
        assert!(a.same_bug(&b));
        let c = Failure {
            kind: FailureKind::AssertFailed,
            ..a
        };
        assert!(!a.same_bug(&c));
    }

    #[test]
    fn same_bug_distinguishes_injected_faults() {
        let pc = Pc::new(FuncId(2), StmtId(7));
        let base = Failure {
            kind: FailureKind::NullDeref,
            pc,
            thread: ThreadId(1),
            fault: Some(InjectedFault {
                kind: FaultKind::AllocFail,
                nth: 0,
            }),
        };
        // Same fault, different thread: still the same bug.
        let same = Failure {
            thread: ThreadId(3),
            ..base
        };
        assert!(base.same_bug(&same));
        // Same crash kind/pc via a *different* alloc failing: distinct bug.
        let other_nth = Failure {
            fault: Some(InjectedFault {
                kind: FaultKind::AllocFail,
                nth: 1,
            }),
            ..base
        };
        assert!(!base.same_bug(&other_nth));
        // Same crash kind/pc via a different fault kind: distinct bug.
        let other_kind = Failure {
            fault: Some(InjectedFault {
                kind: FaultKind::LockTimeout,
                nth: 0,
            }),
            ..base
        };
        assert!(!base.same_bug(&other_kind));
        // Faulted vs organic crash at the same pc: distinct bug.
        let organic = Failure {
            fault: None,
            ..base
        };
        assert!(!base.same_bug(&organic));
    }

    #[test]
    fn display_is_informative() {
        let f = Failure {
            kind: FailureKind::NullDeref,
            pc: Pc::new(FuncId(0), StmtId(2)),
            thread: ThreadId(1),
            fault: None,
        };
        let s = f.to_string();
        assert!(s.contains("null pointer"), "{s}");
        assert!(s.contains("t1"), "{s}");
        let g = Failure {
            fault: Some(InjectedFault {
                kind: FaultKind::AllocFail,
                nth: 2,
            }),
            ..f
        };
        let s = g.to_string();
        assert!(s.contains("injected alloc-fail #2"), "{s}");
    }
}
