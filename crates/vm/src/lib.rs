//! # mcr-vm — deterministic concurrent interpreter for MiniCC
//!
//! The execution substrate of the reproduction. One [`Vm`] runs one
//! program; scheduling is external, which lets the same interpreter play
//! all three roles of the paper:
//!
//! 1. the *failing multicore run* — [`StressScheduler`] interleaves
//!    threads randomly at statement granularity from a seed,
//! 2. the *passing single-core run* — [`DeterministicScheduler`] is
//!    non-preemptive and canonical, making re-execution a pure function
//!    of program and input,
//! 3. the *search runs* — the `mcr-search` crate drives [`Vm::step`]
//!    directly, injecting preemptions at synchronization points and
//!    forking checkpoints (the VM is `Clone`).
//!
//! All dynamic analyses (execution indexing, alignment, tracing,
//! candidate enumeration) attach as [`Observer`]s over the event stream.
//!
//! # Examples
//!
//! ```
//! use mcr_vm::{run, DeterministicScheduler, NullObserver, Outcome, Vm};
//!
//! let program = mcr_lang::compile(
//!     "global x: int; fn main() { x = 41 + 1; }",
//! )?;
//! let mut vm = Vm::new(&program, &[]);
//! let mut sched = DeterministicScheduler::new();
//! let outcome = run(&mut vm, &mut sched, &mut NullObserver, 10_000);
//! assert_eq!(outcome, Outcome::Completed);
//! # Ok::<(), mcr_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod failure;
pub mod memloc;
pub mod memmodel;
pub mod plan;
pub mod rng;
pub mod sched;
pub mod value;
#[allow(clippy::module_inception)]
pub mod vm;

pub use event::{Event, NullObserver, Observer, Recorder, SyncKind, Tee};
pub use failure::{Failure, FailureKind};
pub use memloc::MemLoc;
pub use memmodel::{
    BufferedStore, FaultKind, FaultSpec, InjectedFault, MemModel, DEFAULT_STORE_BUFFER_CAP,
};
pub use plan::{DispatchPlan, FunctionPlan, PlanStats};
pub use rng::SplitMix64;
pub use sched::{
    run, run_until, DeterministicScheduler, Outcome, Scheduler, StressScheduler, DEFAULT_MAX_STEPS,
};
pub use value::{ObjId, ThreadId, Value};
pub use vm::{Frame, Frames, GSlot, Thread, ThreadState, Vm, MAX_ALLOC, MAX_FRAMES};
