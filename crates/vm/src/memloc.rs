//! Memory location identities for traces and shared-variable analysis.

use crate::value::{ObjId, ThreadId};
use mcr_lang::{GlobalId, LocalId};
use std::fmt;

/// Identifies one memory slot during a run.
///
/// Heap identities use [`ObjId`]s, which are allocation-order dependent and
/// therefore only meaningful *within* a run — exactly like raw addresses in
/// a real core dump. Cross-run identification goes through *reference
/// paths* (see `mcr-dump`), as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLoc {
    /// A scalar global.
    Global(GlobalId),
    /// An element of a global array.
    GlobalElem(GlobalId, u32),
    /// A slot of a heap object.
    Heap(ObjId, u32),
    /// A local slot of a specific frame activation.
    Local {
        /// Owning thread.
        tid: ThreadId,
        /// Unique activation serial of the frame.
        frame: u64,
        /// The local slot.
        local: LocalId,
    },
}

impl MemLoc {
    /// Whether this location is shared state (reachable by other threads).
    pub fn is_shared(self) -> bool {
        matches!(
            self,
            MemLoc::Global(_) | MemLoc::GlobalElem(..) | MemLoc::Heap(..)
        )
    }
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLoc::Global(g) => write!(f, "g{}", g.0),
            MemLoc::GlobalElem(g, i) => write!(f, "g{}[{}]", g.0, i),
            MemLoc::Heap(o, i) => write!(f, "obj{}[{}]", o.0, i),
            MemLoc::Local { tid, frame, local } => {
                write!(f, "{}#f{}:l{}", tid, frame, local.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharedness() {
        assert!(MemLoc::Global(GlobalId(0)).is_shared());
        assert!(MemLoc::Heap(ObjId(1), 0).is_shared());
        assert!(!MemLoc::Local {
            tid: ThreadId(0),
            frame: 0,
            local: LocalId(0)
        }
        .is_shared());
    }
}
