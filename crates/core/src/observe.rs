//! Phase observation: progress events and per-phase timings.
//!
//! A [`ReproSession`](crate::ReproSession) drives the paper's pipeline as
//! five named phases. Code that wants progress reporting — a service
//! emitting job status, a CLI progress bar, a metrics sink — implements
//! [`PhaseObserver`] and attaches it with
//! [`ReproSession::set_observer`](crate::ReproSession::set_observer).
//! The observer replaces the old ad-hoc `ReproTimings` plumbing as the
//! *live* channel; the per-phase durations are additionally persisted
//! inside each phase artifact, so a checkpointed session still reports
//! faithful [`ReproTimings`](crate::ReproTimings) after a resume.

use std::fmt;
use std::time::Duration;

/// One phase of the reproduction pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Reverse engineering the failure's execution index (§3.2).
    Index,
    /// The deterministic passing run locating the aligned point (§3.3).
    Align,
    /// Replay to the aligned point, dump capture, and dump comparison
    /// (§4).
    Diff,
    /// CSV-access prioritization (temporal or dependence distance).
    Rank,
    /// The directed schedule search (§5).
    Search,
    /// Pre-phase: compiling the program into a direct-threaded dispatch
    /// plan (`mcr-vm`'s `DispatchPlan`). Not part of the five-phase
    /// pipeline — it runs before the first phase that needs a VM, emits
    /// no [`PhaseEvent`]s, and is keyed by program fingerprint alone so
    /// near-duplicate fleet jobs share one compiled plan. It surfaces
    /// only in [`StoreStats::per_phase`](crate::StoreStats::per_phase)
    /// like any other cached artifact. Declared last so `Ord` matches
    /// [`Phase::index`].
    Compile,
    /// Pre-phase: the static race/lockset analysis
    /// (`mcr_analysis::race`). Like [`Phase::Compile`] it sits outside
    /// the five-phase pipeline — per-function summaries are cached
    /// under `PhaseKey::derive_for_function` and composed per program,
    /// and the result feeds candidate pruning in the search phase plus
    /// the dump-less `race-lint` surface. Appended after `Compile` so
    /// existing wire indices stay stable.
    StaticRace,
}

/// The five pipeline phases, in execution order. Deliberately excludes
/// [`Phase::Compile`]: drivers iterate this to run a session, and the
/// compile pre-phase is not independently runnable.
pub const PHASES: [Phase; 5] = [
    Phase::Index,
    Phase::Align,
    Phase::Diff,
    Phase::Rank,
    Phase::Search,
];

/// Every phase kind with a wire index, in index order: the five
/// pipeline phases followed by the [`Phase::Compile`] and
/// [`Phase::StaticRace`] pre-phases. This is the iteration order of
/// per-phase store statistics.
pub const PHASE_KINDS: [Phase; 7] = [
    Phase::Index,
    Phase::Align,
    Phase::Diff,
    Phase::Rank,
    Phase::Search,
    Phase::Compile,
    Phase::StaticRace,
];

impl Phase {
    /// The phase executed immediately after this one, if any. The
    /// `Compile` pre-phase sits outside the pipeline chain (`None` in
    /// both directions).
    pub fn next(self) -> Option<Phase> {
        match self {
            Phase::Index => Some(Phase::Align),
            Phase::Align => Some(Phase::Diff),
            Phase::Diff => Some(Phase::Rank),
            Phase::Rank => Some(Phase::Search),
            Phase::Search | Phase::Compile | Phase::StaticRace => None,
        }
    }

    /// The phase executed immediately before this one, if any (the one
    /// whose artifact this phase consumes).
    pub fn prev(self) -> Option<Phase> {
        match self {
            Phase::Index | Phase::Compile | Phase::StaticRace => None,
            Phase::Align => Some(Phase::Index),
            Phase::Diff => Some(Phase::Align),
            Phase::Rank => Some(Phase::Diff),
            Phase::Search => Some(Phase::Rank),
        }
    }

    /// Position of the phase in the pipeline (0-based, execution order;
    /// the `Compile` pre-phase takes the slot after the pipeline).
    /// Stable — it doubles as the phase tag of the wire formats.
    pub fn index(self) -> usize {
        match self {
            Phase::Index => 0,
            Phase::Align => 1,
            Phase::Diff => 2,
            Phase::Rank => 3,
            Phase::Search => 4,
            Phase::Compile => 5,
            Phase::StaticRace => 6,
        }
    }

    /// The phase with the given wire index ([`Phase::index`] inverse).
    pub fn from_index(index: usize) -> Option<Phase> {
        PHASE_KINDS.get(index).copied()
    }

    /// A stable lowercase name (used in progress output and errors).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Index => "index",
            Phase::Align => "align",
            Phase::Diff => "diff",
            Phase::Rank => "rank",
            Phase::Search => "search",
            Phase::Compile => "compile",
            Phase::StaticRace => "static-race",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A progress event emitted by a running session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEvent {
    /// The phase began executing.
    Started {
        /// The phase.
        phase: Phase,
    },
    /// A named sub-stage of the phase finished (e.g. the `Diff` phase's
    /// `replay`, `dump-parse` and `diff` stages, the paper's Table 6
    /// rows).
    Stage {
        /// The enclosing phase.
        phase: Phase,
        /// Stable sub-stage name.
        stage: &'static str,
        /// Wall-clock time the stage took.
        elapsed: Duration,
    },
    /// The phase completed and its artifact is available.
    Finished {
        /// The phase.
        phase: Phase,
        /// Wall-clock time the whole phase took.
        elapsed: Duration,
    },
    /// The phase stopped — cancellation, a phase budget, or an error —
    /// before producing its artifact. Every `Started` is terminated by
    /// exactly one `Finished` or `Interrupted` (a cancelled search
    /// *finishes*, with a partial artifact).
    Interrupted {
        /// The phase.
        phase: Phase,
    },
    /// The phase was *not* executed: its content-addressed key hit the
    /// session's [`ArtifactStore`](crate::ArtifactStore) and the cached
    /// artifact was rehydrated instead. No `Started`/`Finished` pair
    /// fires for a cache hit.
    CacheHit {
        /// The phase.
        phase: Phase,
    },
}

/// Receives [`PhaseEvent`]s from a running session.
///
/// Implementations must be cheap: events fire synchronously on the
/// session's thread, between (not inside) the hot per-statement loops.
/// Sessions travel across executor threads in a batch fleet, so the
/// observer attached to one must be [`Send`] (see
/// [`ReproSession::set_observer`](crate::ReproSession::set_observer)).
pub trait PhaseObserver {
    /// Called for every event, in order.
    fn on_event(&mut self, event: &PhaseEvent);
}

/// Forwarding impl so a shared, inspectable observer can be attached:
/// clone the `Arc` into the session and keep the other clone to read the
/// collected events afterwards (including from another thread — the
/// shape a fleet scheduler uses for its per-job event streams).
impl<T: PhaseObserver> PhaseObserver for std::sync::Arc<std::sync::Mutex<T>> {
    fn on_event(&mut self, event: &PhaseEvent) {
        self.lock()
            .expect("phase observer poisoned")
            .on_event(event);
    }
}

/// An observer that ignores every event (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPhaseObserver;

impl PhaseObserver for NullPhaseObserver {
    fn on_event(&mut self, _event: &PhaseEvent) {}
}

/// An observer that records every event — handy for tests and for
/// assembling ad-hoc timing tables.
#[derive(Debug, Clone, Default)]
pub struct TimingLog {
    /// Every event received, in order.
    pub events: Vec<PhaseEvent>,
}

impl TimingLog {
    /// An empty log.
    pub fn new() -> TimingLog {
        TimingLog::default()
    }

    /// The completed phases, in completion order.
    pub fn finished(&self) -> Vec<(Phase, Duration)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::Finished { phase, elapsed } => Some((*phase, *elapsed)),
                _ => None,
            })
            .collect()
    }

    /// The phases rehydrated from an artifact store, in event order.
    pub fn cache_hits(&self) -> Vec<Phase> {
        self.events
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::CacheHit { phase } => Some(*phase),
                _ => None,
            })
            .collect()
    }
}

impl PhaseObserver for TimingLog {
    fn on_event(&mut self, event: &PhaseEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_order_and_names() {
        assert_eq!(Phase::Index.next(), Some(Phase::Align));
        assert_eq!(Phase::Search.next(), None);
        assert_eq!(Phase::Index.prev(), None);
        assert_eq!(Phase::Search.prev(), Some(Phase::Rank));
        let names: Vec<&str> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["index", "align", "diff", "rank", "search"]);
        assert_eq!(Phase::Diff.to_string(), "diff");
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(p.prev(), i.checked_sub(1).map(|j| PHASES[j]));
        }
    }

    #[test]
    fn compile_pre_phase_sits_outside_the_pipeline() {
        assert_eq!(Phase::Compile.index(), 5);
        assert_eq!(Phase::Compile.name(), "compile");
        assert_eq!(Phase::Compile.next(), None);
        assert_eq!(Phase::Compile.prev(), None);
        assert!(!PHASES.contains(&Phase::Compile));
        assert_eq!(Phase::StaticRace.index(), 6);
        assert_eq!(Phase::StaticRace.name(), "static-race");
        assert_eq!(Phase::StaticRace.next(), None);
        assert_eq!(Phase::StaticRace.prev(), None);
        assert!(!PHASES.contains(&Phase::StaticRace));
        for (i, p) in PHASE_KINDS.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Phase::from_index(i), Some(*p));
        }
        assert_eq!(Phase::from_index(7), None);
    }

    #[test]
    fn timing_log_collects_finished() {
        let mut log = TimingLog::new();
        log.on_event(&PhaseEvent::Started {
            phase: Phase::Index,
        });
        log.on_event(&PhaseEvent::Finished {
            phase: Phase::Index,
            elapsed: Duration::from_millis(5),
        });
        assert_eq!(
            log.finished(),
            vec![(Phase::Index, Duration::from_millis(5))]
        );
    }
}
