//! The end-to-end reproduction pipeline — the paper's contribution.
//!
//! Input: a failure core dump from an (uncontrolled, multicore-style)
//! run, plus the failing program input. Output: a failure-inducing
//! schedule, found via:
//!
//! 1. **reverse engineering** the failure's execution index from the
//!    dump (§3.2, Algorithm 1),
//! 2. a deterministic **passing run** that locates the *aligned point*
//!    (§3.3, Fig. 7) while logging sync points and shared accesses,
//! 3. a deterministic **replay** stopping at the aligned point, where an
//!    aligned core dump and a dependence trace are captured,
//! 4. **dump comparison** yielding the critical shared variables (§4),
//! 5. CSV-access **prioritization** (temporal or dependence distance),
//! 6. the **directed schedule search** (§5, Algorithm 2).
//!
//! The instruction-count alignment baseline of Table 5 replaces steps
//! 1–3 with "replay the same number of thread-local instructions, then
//! find the failure PC" — see [`AlignMode::InstructionCount`].

use mcr_analysis::ProgramAnalysis;
use mcr_dump::{
    reachable_vars, resolve_loc, CoreDump, DumpDiff, DumpReason, RefPath, ResolvedVar,
    TraverseLimits,
};
use mcr_index::{reverse_index, AlignSignal, Aligner, Alignment, ExecutionIndex};
use mcr_lang::{Inst, Program};
use mcr_search::{annotate, find_schedule, Algorithm, SearchConfig, SearchResult, SyncLogger};
use mcr_slice::{backward_slice, rank_csv_accesses, Strategy, TraceCollector};
use mcr_vm::{run_until, DeterministicScheduler, MemLoc, Outcome, Tee, ThreadId, Vm};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// How the aligned point is located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignMode {
    /// Execution-index alignment (the paper's technique).
    ExecutionIndex,
    /// Thread-local instruction-count alignment (the Table 5 baseline):
    /// replay until the failing thread has retired as many instructions
    /// as the dump records, then scan for the next execution of the
    /// failure PC.
    InstructionCount,
}

/// Reproduction options.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// CSV access prioritization strategy.
    pub strategy: Strategy,
    /// Aligned-point location method.
    pub align_mode: AlignMode,
    /// Search algorithm.
    pub algorithm: Algorithm,
    /// Schedule search configuration.
    pub search: SearchConfig,
    /// Dependence-trace window (events).
    pub trace_window: usize,
    /// Step cap for the passing run and replay.
    pub max_steps: u64,
    /// Traversal limits for dump reachability.
    pub limits: TraverseLimits,
    /// Worker threads for the schedule search (overrides
    /// `search.parallelism`). Defaults to the machine's available cores;
    /// `1` preserves the exact serial behavior. Results are deterministic
    /// either way — the parallel search selects the lowest-worklist-index
    /// winner (see [`SearchConfig::parallelism`]).
    pub parallelism: usize,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            strategy: Strategy::Temporal,
            align_mode: AlignMode::ExecutionIndex,
            algorithm: Algorithm::ChessX,
            search: SearchConfig::default(),
            trace_window: 2_000_000,
            max_steps: 50_000_000,
            limits: TraverseLimits::default(),
            parallelism: minipool::available_parallelism(),
        }
    }
}

/// Wall-clock costs of the analysis phases (paper Table 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReproTimings {
    /// Reverse engineering the failure index.
    pub reverse: Duration,
    /// The full passing run (alignment scan + logging).
    pub passing_run: Duration,
    /// The replay to the aligned point (dump + trace capture).
    pub replay: Duration,
    /// Encoding + decoding + traversing both dumps ("parsing").
    pub dump_parse: Duration,
    /// Comparing the two variable maps ("diff").
    pub diff: Duration,
    /// Dynamic slicing.
    pub slicing: Duration,
    /// The schedule search.
    pub search: Duration,
}

/// The full reproduction report (feeds Tables 3–6).
#[derive(Debug, Clone)]
pub struct ReproReport {
    /// The reverse-engineered failure index (when EI alignment is used).
    pub index: Option<ExecutionIndex>,
    /// The alignment found.
    pub alignment: Alignment,
    /// Encoded size of the failure dump in bytes.
    pub failure_dump_bytes: usize,
    /// Encoded size of the aligned dump in bytes.
    pub aligned_dump_bytes: usize,
    /// Variables reachable from the failing thread in the failure dump.
    pub vars: usize,
    /// Variables with differing values across the two dumps.
    pub diffs: usize,
    /// Shared variables compared.
    pub shared: usize,
    /// Critical shared variables (reference paths).
    pub csv_paths: Vec<RefPath>,
    /// CSV locations resolved in the passing run.
    pub csv_locs: Vec<MemLoc>,
    /// The schedule search result.
    pub search: SearchResult,
    /// Phase timings.
    pub timings: ReproTimings,
    /// True when the deterministic passing run itself crashed with the
    /// target failure (not a Heisenbug — no search needed).
    pub deterministic_repro: bool,
}

/// Errors from the reproduction pipeline.
#[derive(Debug)]
pub enum ReproError {
    /// The dump carries no failure.
    NotAFailureDump,
    /// The failure index could not be reverse engineered.
    Reverse(mcr_index::ReverseError),
    /// The dump's failing thread does not exist in the re-execution.
    NoSuchThread(ThreadId),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::NotAFailureDump => write!(f, "dump does not record a failure"),
            ReproError::Reverse(e) => write!(f, "index reverse engineering failed: {e}"),
            ReproError::NoSuchThread(t) => {
                write!(f, "failing thread {t} does not exist in the re-execution")
            }
        }
    }
}

impl Error for ReproError {}

impl From<mcr_index::ReverseError> for ReproError {
    fn from(e: mcr_index::ReverseError) -> Self {
        ReproError::Reverse(e)
    }
}

/// The reproduction engine for one program.
#[derive(Debug)]
pub struct Reproducer<'p> {
    program: &'p Program,
    analysis: ProgramAnalysis,
    options: ReproOptions,
}

impl<'p> Reproducer<'p> {
    /// Creates a reproducer (running the static analysis once).
    pub fn new(program: &'p Program, options: ReproOptions) -> Self {
        Reproducer {
            program,
            analysis: ProgramAnalysis::analyze(program),
            options,
        }
    }

    /// The per-function static analysis (shared with other phases).
    pub fn analysis(&self) -> &ProgramAnalysis {
        &self.analysis
    }

    /// Runs the full pipeline on a failure dump.
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    pub fn reproduce(
        &self,
        failure_dump: &CoreDump,
        input: &[i64],
    ) -> Result<ReproReport, ReproError> {
        let failure = failure_dump.failure().ok_or(ReproError::NotAFailureDump)?;
        let focus = failure_dump.focus;
        let mut timings = ReproTimings::default();

        // Phase 1: failure index (EI mode only).
        let t0 = Instant::now();
        let index = match self.options.align_mode {
            AlignMode::ExecutionIndex => {
                Some(reverse_index(self.program, &self.analysis, failure_dump)?)
            }
            AlignMode::InstructionCount => None,
        };
        timings.reverse = t0.elapsed();

        // Phase 2: deterministic passing run — alignment + sync/access log.
        let t0 = Instant::now();
        let mut vm = Vm::new(self.program, input);
        if focus.0 as usize >= 1 && self.program.funcs.is_empty() {
            return Err(ReproError::NoSuchThread(focus));
        }
        let mut logger = SyncLogger::new();
        let (alignment, deterministic_repro, info) = match &index {
            Some(idx) => {
                let mut aligner = Aligner::new(self.program, &self.analysis, focus, idx);
                let outcome = {
                    let mut tee = Tee {
                        a: &mut aligner,
                        b: &mut logger,
                    };
                    let mut sched = DeterministicScheduler::new();
                    run_until(
                        &mut vm,
                        &mut sched,
                        &mut tee,
                        self.options.max_steps,
                        |_| false,
                    )
                };
                let deterministic = matches!(outcome, Outcome::Crashed(f) if f.same_bug(&failure));
                (aligner.finish(), deterministic, logger.finish())
            }
            None => {
                // Instruction-count alignment (Table 5 baseline).
                let target_instrs = failure_dump.focus_thread().instrs;
                let failure_pc = failure.pc;
                let mut sched = DeterministicScheduler::new();
                let mut reached: Option<u64> = None;
                let mut aligned_at: Option<u64> = None;
                let outcome = run_until(
                    &mut vm,
                    &mut sched,
                    &mut logger,
                    self.options.max_steps,
                    |vm| {
                        let th = match vm.threads().get(focus.0 as usize) {
                            Some(t) => t,
                            None => return false,
                        };
                        if th.instrs >= target_instrs {
                            if reached.is_none() {
                                reached = Some(vm.steps());
                            }
                            // Scan for the failure PC from here on.
                            if th.pc() == Some(failure_pc) {
                                aligned_at = Some(vm.steps());
                                return true;
                            }
                            // Give up the PC scan after a grace window.
                            if vm.steps() > reached.unwrap() + 200_000 {
                                aligned_at = reached;
                                return true;
                            }
                        }
                        false
                    },
                );
                // If the run ended before the scan finished, align at the
                // point the count was reached (or the end).
                let step = aligned_at
                    .or(reached)
                    .unwrap_or_else(|| vm.steps().saturating_sub(1));
                let deterministic = matches!(outcome, Outcome::Crashed(f) if f.same_bug(&failure));
                // Restart the logger run to completion so candidate and
                // access information covers the whole passing run.
                let mut vm2 = Vm::new(self.program, input);
                let mut sched2 = DeterministicScheduler::new();
                let mut logger2 = SyncLogger::new();
                run_until(
                    &mut vm2,
                    &mut sched2,
                    &mut logger2,
                    self.options.max_steps,
                    |_| false,
                );
                let alignment = Alignment {
                    signal: AlignSignal::Closest,
                    step,
                    remaining: 0,
                };
                (alignment, deterministic, logger2.finish())
            }
        };
        timings.passing_run = t0.elapsed();

        // Phase 3: replay to the aligned point; capture dump + trace.
        let t0 = Instant::now();
        let mut replay = Vm::new(self.program, input);
        let mut collector =
            TraceCollector::new(self.program, &self.analysis, self.options.trace_window);
        {
            let mut sched = DeterministicScheduler::new();
            let stop_after = alignment.step;
            run_until(
                &mut replay,
                &mut sched,
                &mut collector,
                self.options.max_steps,
                |vm| vm.steps() > stop_after,
            );
        }
        let aligned_focus = if (focus.0 as usize) < replay.threads().len() {
            focus
        } else {
            ThreadId(0)
        };
        let aligned_dump = CoreDump::capture(&replay, aligned_focus, DumpReason::Aligned);
        let trace = collector.finish();
        timings.replay = t0.elapsed();

        // Phase 4: dump comparison ("parse" covers encode/decode and
        // traversal, the GDB-dominated cost of the paper's Table 6).
        let t0 = Instant::now();
        let failure_bytes = mcr_dump::encode(failure_dump);
        let aligned_bytes = mcr_dump::encode(&aligned_dump);
        let failure_reparsed = mcr_dump::decode(&failure_bytes).expect("own codec");
        let aligned_reparsed = mcr_dump::decode(&aligned_bytes).expect("own codec");
        let vars_fail = reachable_vars(&failure_reparsed, self.options.limits);
        let vars_aligned = reachable_vars(&aligned_reparsed, self.options.limits);
        timings.dump_parse = t0.elapsed();

        let t0 = Instant::now();
        let diff = DumpDiff::compare_maps(&vars_fail, &vars_aligned);
        timings.diff = t0.elapsed();

        // Resolve CSV paths to passing-run locations.
        let csv_locs: Vec<MemLoc> = diff
            .csvs
            .iter()
            .filter_map(|path| resolve_loc(&aligned_dump, path))
            .filter_map(|rv| match rv {
                ResolvedVar::Global(g) => Some(MemLoc::Global(g)),
                ResolvedVar::GlobalElem(g, i) => Some(MemLoc::GlobalElem(g, i)),
                ResolvedVar::Heap(o, i) => Some(MemLoc::Heap(o, i)),
                _ => None,
            })
            .collect();
        let csv_set: HashSet<MemLoc> = csv_locs.iter().copied().collect();

        // Phase 5: prioritize CSV accesses.
        let t0 = Instant::now();
        let aligned_serial = trace.last().map(|e| e.serial).unwrap_or(0);
        let slice = match self.options.strategy {
            Strategy::Dependence => {
                let criteria: Vec<u64> = trace.last().map(|e| e.serial).into_iter().collect();
                Some(backward_slice(&trace, &criteria))
            }
            Strategy::Temporal => None,
        };
        let ranked = rank_csv_accesses(
            &trace,
            aligned_serial,
            &csv_set,
            self.options.strategy,
            slice.as_ref(),
        );
        timings.slicing = t0.elapsed();

        let mut priorities: HashMap<(u64, MemLoc, bool), u32> = HashMap::new();
        for r in &ranked {
            let e = priorities
                .entry((r.step, r.loc, r.is_write))
                .or_insert(r.priority);
            *e = (*e).min(r.priority);
        }

        // Phase 6: directed schedule search.
        let t0 = Instant::now();
        let (candidates, future) = annotate(&info, &csv_set, &priorities);
        let fresh = Vm::new(self.program, input);
        let search_config = SearchConfig {
            parallelism: self.options.parallelism.max(1),
            ..self.options.search.clone()
        };
        let search = find_schedule(
            &fresh,
            &candidates,
            &future,
            failure,
            self.options.algorithm,
            &search_config,
        );
        timings.search = t0.elapsed();

        Ok(ReproReport {
            index,
            alignment,
            failure_dump_bytes: failure_bytes.len(),
            aligned_dump_bytes: aligned_bytes.len(),
            vars: diff.vars_a,
            diffs: diff.diff_count(),
            shared: diff.shared_compared,
            csv_paths: diff.csvs,
            csv_locs,
            search,
            timings,
            deterministic_repro,
        })
    }
}

/// Sanity helper used by tests and examples: does the program contain at
/// least one synchronization statement (a prerequisite for preemption
/// candidates to exist)?
pub fn has_sync_points(program: &Program) -> bool {
    program
        .funcs
        .iter()
        .any(|f| f.body.iter().any(Inst::is_sync))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stress::find_failure;

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    fn fig1_repro(options: ReproOptions) -> (mcr_lang::Program, ReproReport) {
        let p = mcr_lang::compile(FIG1).unwrap();
        let input = [0i64, 1];
        let sf = find_failure(&p, &input, 0..200_000, 1_000_000).expect("stress exposes");
        let r = Reproducer::new(&p, options);
        let report = r.reproduce(&sf.dump, &input).unwrap();
        (p, report)
    }

    #[test]
    fn end_to_end_temporal() {
        let (_p, report) = fig1_repro(ReproOptions::default());
        assert!(!report.deterministic_repro, "fig1 is a Heisenbug");
        assert!(report.search.reproduced, "must reproduce: {report:?}");
        // The x flag is among the CSVs.
        assert!(!report.csv_locs.is_empty());
        assert!(report.index.as_ref().unwrap().len() >= 4);
        assert!(report.failure_dump_bytes > 0);
        // Very few tries (paper: < 10 for most bugs).
        assert!(report.search.tries <= 20, "tries = {}", report.search.tries);
    }

    #[test]
    fn end_to_end_dependence() {
        let (_p, report) = fig1_repro(ReproOptions {
            strategy: Strategy::Dependence,
            ..Default::default()
        });
        assert!(report.search.reproduced);
        assert!(report.search.tries <= 20);
    }

    #[test]
    fn plain_chess_needs_no_fewer_tries() {
        let (_p, guided) = fig1_repro(ReproOptions::default());
        let (_p2, plain) = fig1_repro(ReproOptions {
            algorithm: Algorithm::Chess,
            ..Default::default()
        });
        assert!(plain.search.reproduced);
        assert!(guided.search.tries <= plain.search.tries);
    }

    #[test]
    fn instruction_count_mode_runs() {
        let (_p, report) = fig1_repro(ReproOptions {
            align_mode: AlignMode::InstructionCount,
            ..Default::default()
        });
        // The baseline may or may not reproduce fig1 (the run is short,
        // so the count lands close); the pipeline itself must complete
        // and produce comparable statistics.
        assert!(report.index.is_none());
        assert!(report.vars > 0);
    }

    #[test]
    fn non_failure_dump_is_rejected() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut vm = Vm::new(&p, &[0, 0]);
        let mut s = DeterministicScheduler::new();
        mcr_vm::run(&mut vm, &mut s, &mut mcr_vm::NullObserver, 1_000_000);
        let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
        let r = Reproducer::new(&p, ReproOptions::default());
        assert!(matches!(
            r.reproduce(&dump, &[0, 0]),
            Err(ReproError::NotAFailureDump)
        ));
    }

    #[test]
    fn sync_point_helper() {
        let p = mcr_lang::compile(FIG1).unwrap();
        assert!(has_sync_points(&p));
        let p2 = mcr_lang::compile("fn main() { }").unwrap();
        assert!(!has_sync_points(&p2));
    }
}
