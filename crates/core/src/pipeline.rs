//! Pipeline configuration, errors, and the one-call compatibility
//! wrapper.
//!
//! The paper's pipeline (reverse-index → align → replay → dump-diff →
//! prioritize → search) is implemented as a staged, resumable
//! [`ReproSession`] — see [`crate::session`]. This module holds
//! everything around it:
//!
//! * [`ReproOptions`] (with [`ReproOptions::builder`]) — strategy,
//!   alignment mode, search algorithm and budgets,
//! * [`PhaseBudget`]/[`PhaseBudgets`] — per-phase wall-clock and step
//!   caps,
//! * [`ReproError`] — everything that can interrupt a reproduction,
//! * [`ReproReport`]/[`ReproTimings`] — the final report (feeds the
//!   paper's Tables 3–6),
//! * [`Reproducer`] — the original blocking entry point, now a thin
//!   wrapper that drives a session end to end.
//!
//! The instruction-count alignment baseline of Table 5 replaces the
//! index/align phases with "replay the same number of thread-local
//! instructions, then find the failure PC" — see
//! [`AlignMode::InstructionCount`].

use crate::observe::Phase;
use crate::session::ReproSession;
use mcr_analysis::ProgramAnalysis;
use mcr_dump::{CoreDump, DecodeError, RefPath, TraverseLimits};
use mcr_index::{Alignment, ExecutionIndex};
use mcr_lang::{Inst, Program};
use mcr_search::{Algorithm, SearchConfig, SearchResult};
use mcr_slice::Strategy;
use mcr_vm::{MemLoc, ThreadId};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// How the aligned point is located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignMode {
    /// Execution-index alignment (the paper's technique).
    ExecutionIndex,
    /// Thread-local instruction-count alignment (the Table 5 baseline):
    /// replay until the failing thread has retired as many instructions
    /// as the dump records, then scan for the next execution of the
    /// failure PC.
    ///
    /// The passing run is one full logged execution (it no longer stops
    /// at the aligned point), so — like
    /// [`AlignMode::ExecutionIndex`] — `deterministic_repro` reflects a
    /// matching crash anywhere in that run, including after the aligned
    /// point.
    InstructionCount,
}

/// A wall-clock and/or step cap for one phase of a session.
///
/// Budgets are enforced where the pipeline actually loops: the passing
/// run ([`Phase::Align`]), the replay ([`Phase::Diff`]), and the schedule
/// search ([`Phase::Search`]). The `Index` and `Rank` phases are one-shot
/// computations — for them only the cancellation check at phase entry
/// applies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBudget {
    /// Cap on VM steps (align/diff) or per-try steps (search); `None`
    /// leaves the [`ReproOptions`] default in force.
    pub max_steps: Option<u64>,
    /// Wall-clock cap; exceeding it interrupts align/diff with
    /// [`ReproError::BudgetExhausted`] and cuts the search off with a
    /// partial result.
    pub wall: Option<Duration>,
}

impl PhaseBudget {
    /// A budget with only a wall-clock cap.
    pub fn wall(d: Duration) -> PhaseBudget {
        PhaseBudget {
            wall: Some(d),
            ..Default::default()
        }
    }

    /// A budget with only a step cap.
    pub fn steps(n: u64) -> PhaseBudget {
        PhaseBudget {
            max_steps: Some(n),
            ..Default::default()
        }
    }
}

/// Optional per-phase budgets (see [`PhaseBudget`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBudgets {
    /// Budget for [`Phase::Index`].
    pub index: Option<PhaseBudget>,
    /// Budget for [`Phase::Align`].
    pub align: Option<PhaseBudget>,
    /// Budget for [`Phase::Diff`].
    pub diff: Option<PhaseBudget>,
    /// Budget for [`Phase::Rank`].
    pub rank: Option<PhaseBudget>,
    /// Budget for [`Phase::Search`].
    pub search: Option<PhaseBudget>,
}

impl PhaseBudgets {
    /// The budget configured for `phase`, if any. The `Compile` and
    /// `StaticRace` pre-phases are never budgeted (plan compilation and
    /// summary composition are microseconds and infallible).
    pub fn get(&self, phase: Phase) -> Option<PhaseBudget> {
        match phase {
            Phase::Index => self.index,
            Phase::Align => self.align,
            Phase::Diff => self.diff,
            Phase::Rank => self.rank,
            Phase::Search => self.search,
            Phase::Compile | Phase::StaticRace => None,
        }
    }

    /// Sets the budget for `phase` (ignored for the unbudgetable
    /// `Compile` and `StaticRace` pre-phases).
    pub fn set(&mut self, phase: Phase, budget: PhaseBudget) {
        match phase {
            Phase::Index => self.index = Some(budget),
            Phase::Align => self.align = Some(budget),
            Phase::Diff => self.diff = Some(budget),
            Phase::Rank => self.rank = Some(budget),
            Phase::Search => self.search = Some(budget),
            Phase::Compile | Phase::StaticRace => {}
        }
    }
}

/// Reproduction options.
#[derive(Debug, Clone)]
pub struct ReproOptions {
    /// CSV access prioritization strategy.
    pub strategy: Strategy,
    /// Aligned-point location method.
    pub align_mode: AlignMode,
    /// Search algorithm.
    pub algorithm: Algorithm,
    /// Schedule search configuration.
    pub search: SearchConfig,
    /// Dependence-trace window (events).
    pub trace_window: usize,
    /// Where the dependence trace's retained window lives while it is
    /// collected: in memory (the historical behavior) or spilled into
    /// checksummed [`SegmentedBytes`](mcr_dump::SegmentedBytes) frames so
    /// `trace_window` can exceed RAM. Purely a residency knob — the
    /// finished [`Trace`](mcr_slice::Trace) is bit-identical either way —
    /// so it is excluded from phase keys and, like the other runtime
    /// tuning knobs, not serialized into checkpoints (resumed sessions
    /// default to [`TraceSpill::InMemory`](mcr_slice::TraceSpill)).
    ///
    /// The default segmented granularity
    /// ([`TraceSpill::segmented()`](mcr_slice::TraceSpill::segmented))
    /// is adaptive: a session with a warm artifact store re-derives the
    /// frame size from the store's measured per-phase residency
    /// histogram (see `ReproSession::effective_trace_spill`). An
    /// explicit `Segmented { frame_events }` is honored verbatim.
    pub trace_spill: mcr_slice::TraceSpill,
    /// Step cap for the passing run and replay.
    pub max_steps: u64,
    /// Traversal limits for dump reachability.
    pub limits: TraverseLimits,
    /// Worker threads for the schedule search (overrides
    /// `search.parallelism`). Defaults to the machine's available cores;
    /// `1` preserves the exact serial behavior. Results are deterministic
    /// either way — the parallel search selects the lowest-worklist-index
    /// winner (see [`SearchConfig::parallelism`]).
    pub parallelism: usize,
    /// Per-phase wall-clock/step budgets.
    pub budgets: PhaseBudgets,
    /// Content-addressed artifact store consulted before every phase
    /// (see [`ArtifactStore`](crate::ArtifactStore)): a phase whose
    /// [`PhaseKey`](crate::PhaseKey) hits the store is skipped and its
    /// cached artifact rehydrated. `None` caches nothing. A runtime
    /// attachment: not serialized in checkpoints and not part of phase
    /// keys.
    pub store: Option<std::sync::Arc<dyn crate::ArtifactStore>>,
    /// Injected executor handle for the schedule search (and any other
    /// fan-out this session performs). A batch fleet hands every job a
    /// clone of one handle carrying a shared [`minipool::Limit`], so all
    /// sessions draw from a single thread budget; `None` builds private
    /// pools from [`ReproOptions::parallelism`], the historical
    /// behavior. A runtime attachment like `store`.
    pub pool: Option<minipool::Pool>,
    /// Memory consistency model every VM in the session runs under
    /// (replay, alignment, stress, search). Part of the phase key: a
    /// schedule found under TSO is only valid under TSO.
    pub mem_model: mcr_vm::MemModel,
    /// Fault-injection plan applied to every VM in the session. Faults
    /// are named by per-thread operation ordinals, so they survive
    /// schedule perturbation; like `mem_model` they are part of run
    /// identity and serialize into checkpoints.
    pub faults: Vec<mcr_vm::FaultSpec>,
    /// Consult the static race/lockset analysis (`mcr_analysis::race`)
    /// during the search phase: preemption candidates anchored at
    /// statically *Solo* statements (provably executed before the first
    /// spawn, while only thread 0 exists) are pruned from the search
    /// worklist, and May-Race accesses are ranked above Unknown ones in
    /// the bottom priority tier. Sound by construction — pruning only
    /// removes preemptions that are no-ops, so the winning schedule is
    /// bit-identical to the unpruned search (see `mcr_analysis::race`).
    /// Automatically disabled while [`ReproOptions::faults`] is
    /// non-empty: an injected fault can make any statement fail, which
    /// voids the static analysis' execution model. Part of run identity
    /// (the search artifact records how many schedules were tried, and
    /// pruning changes that), so it serializes into checkpoints and
    /// phase keys.
    pub static_race: bool,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            strategy: Strategy::Temporal,
            align_mode: AlignMode::ExecutionIndex,
            algorithm: Algorithm::ChessX,
            search: SearchConfig::default(),
            trace_window: 2_000_000,
            trace_spill: mcr_slice::TraceSpill::InMemory,
            max_steps: 50_000_000,
            limits: TraverseLimits::default(),
            parallelism: minipool::available_parallelism(),
            budgets: PhaseBudgets::default(),
            store: None,
            pool: None,
            mem_model: mcr_vm::MemModel::Sc,
            faults: Vec::new(),
            static_race: false,
        }
    }
}

impl ReproOptions {
    /// A builder over the defaults:
    ///
    /// ```
    /// use mcr_core::{PhaseBudget, Phase, ReproOptions};
    /// use mcr_slice::Strategy;
    /// use std::time::Duration;
    ///
    /// let options = ReproOptions::builder()
    ///     .strategy(Strategy::Dependence)
    ///     .parallelism(1)
    ///     .budget(Phase::Search, PhaseBudget::wall(Duration::from_secs(60)))
    ///     .build();
    /// assert_eq!(options.strategy, Strategy::Dependence);
    /// ```
    pub fn builder() -> ReproOptionsBuilder {
        ReproOptionsBuilder {
            options: ReproOptions::default(),
        }
    }
}

/// Builder for [`ReproOptions`] (see [`ReproOptions::builder`]).
#[derive(Debug, Clone)]
pub struct ReproOptionsBuilder {
    options: ReproOptions,
}

impl ReproOptionsBuilder {
    /// Sets the CSV prioritization strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Sets the aligned-point location method.
    pub fn align_mode(mut self, mode: AlignMode) -> Self {
        self.options.align_mode = mode;
        self
    }

    /// Sets the search algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// Sets the schedule-search configuration.
    pub fn search(mut self, search: SearchConfig) -> Self {
        self.options.search = search;
        self
    }

    /// Sets the dependence-trace window (events).
    pub fn trace_window(mut self, events: usize) -> Self {
        self.options.trace_window = events;
        self
    }

    /// Sets where the dependence-trace window resides during collection
    /// (in memory, or spilled into checksummed segments).
    pub fn trace_spill(mut self, spill: mcr_slice::TraceSpill) -> Self {
        self.options.trace_spill = spill;
        self
    }

    /// Sets the step cap for the passing run and replay.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.options.max_steps = steps;
        self
    }

    /// Sets the dump-traversal limits.
    pub fn limits(mut self, limits: TraverseLimits) -> Self {
        self.options.limits = limits;
        self
    }

    /// Sets the search worker-thread count.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.options.parallelism = workers;
        self
    }

    /// Sets the budget for one phase.
    pub fn budget(mut self, phase: Phase, budget: PhaseBudget) -> Self {
        self.options.budgets.set(phase, budget);
        self
    }

    /// Attaches a content-addressed artifact store.
    pub fn store(mut self, store: std::sync::Arc<dyn crate::ArtifactStore>) -> Self {
        self.options.store = Some(store);
        self
    }

    /// Injects a shared executor handle.
    pub fn pool(mut self, pool: minipool::Pool) -> Self {
        self.options.pool = Some(pool);
        self
    }

    /// Sets the memory consistency model for every VM in the session.
    pub fn mem_model(mut self, model: mcr_vm::MemModel) -> Self {
        self.options.mem_model = model;
        self
    }

    /// Sets the fault-injection plan for every VM in the session.
    pub fn faults(mut self, faults: Vec<mcr_vm::FaultSpec>) -> Self {
        self.options.faults = faults;
        self
    }

    /// Enables (or disables) static-race candidate pruning and ranking
    /// in the search phase (see [`ReproOptions::static_race`]).
    pub fn static_race(mut self, enabled: bool) -> Self {
        self.options.static_race = enabled;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> ReproOptions {
        self.options
    }
}

/// Wall-clock costs of the analysis phases (paper Table 6).
///
/// Assembled from the per-phase durations persisted inside the session
/// artifacts, so the numbers survive checkpoint/resume; live progress
/// goes through [`PhaseObserver`](crate::PhaseObserver) instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReproTimings {
    /// Reverse engineering the failure index.
    pub reverse: Duration,
    /// The full passing run (alignment scan + logging).
    pub passing_run: Duration,
    /// The replay to the aligned point (dump + trace capture).
    pub replay: Duration,
    /// Encoding + decoding + traversing both dumps ("parsing").
    pub dump_parse: Duration,
    /// Comparing the two variable maps ("diff").
    pub diff: Duration,
    /// Dynamic slicing.
    pub slicing: Duration,
    /// The schedule search.
    pub search: Duration,
}

/// The full reproduction report (feeds Tables 3–6).
///
/// Equality is total — timings included — so `a == b` states that `b`
/// is the *bit-identical* outcome of the same work (rehydrated phase
/// artifacts embed the original run's durations, which is what makes
/// warm and batched runs literally indistinguishable from their cold
/// originals).
#[derive(Debug, Clone, PartialEq)]
pub struct ReproReport {
    /// The reverse-engineered failure index (when EI alignment is used).
    pub index: Option<ExecutionIndex>,
    /// The alignment found.
    pub alignment: Alignment,
    /// Encoded size of the failure dump in bytes.
    pub failure_dump_bytes: usize,
    /// Encoded size of the aligned dump in bytes.
    pub aligned_dump_bytes: usize,
    /// Variables reachable from the failing thread in the failure dump.
    pub vars: usize,
    /// Variables with differing values across the two dumps.
    pub diffs: usize,
    /// Shared variables compared.
    pub shared: usize,
    /// Critical shared variables (reference paths).
    pub csv_paths: Vec<RefPath>,
    /// CSV locations resolved in the passing run.
    pub csv_locs: Vec<MemLoc>,
    /// The schedule search result.
    pub search: SearchResult,
    /// Phase timings.
    pub timings: ReproTimings,
    /// True when the deterministic passing run itself crashed with the
    /// target failure (not a Heisenbug — no search needed).
    pub deterministic_repro: bool,
}

/// Errors from the reproduction pipeline.
#[derive(Debug)]
pub enum ReproError {
    /// The dump carries no failure.
    NotAFailureDump,
    /// The failure index could not be reverse engineered.
    Reverse(mcr_index::ReverseError),
    /// The dump's failing thread does not exist in the re-execution.
    NoSuchThread(ThreadId),
    /// A dump or artifact failed to decode (corrupted or truncated
    /// bytes).
    Codec(DecodeError),
    /// The session's [`CancelToken`](mcr_search::CancelToken) fired
    /// during the named phase, before its artifact was produced.
    Cancelled(Phase),
    /// The named phase's [`PhaseBudget`] wall clock expired before the
    /// phase finished.
    BudgetExhausted(Phase),
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::NotAFailureDump => write!(f, "dump does not record a failure"),
            ReproError::Reverse(e) => write!(f, "index reverse engineering failed: {e}"),
            ReproError::NoSuchThread(t) => {
                write!(f, "failing thread {t} does not exist in the re-execution")
            }
            ReproError::Codec(e) => write!(f, "artifact decoding failed: {e}"),
            ReproError::Cancelled(p) => write!(f, "cancelled during the {p} phase"),
            ReproError::BudgetExhausted(p) => {
                write!(f, "phase budget exhausted during the {p} phase")
            }
        }
    }
}

impl Error for ReproError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReproError::Reverse(e) => Some(e),
            ReproError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mcr_index::ReverseError> for ReproError {
    fn from(e: mcr_index::ReverseError) -> Self {
        ReproError::Reverse(e)
    }
}

impl From<DecodeError> for ReproError {
    fn from(e: DecodeError) -> Self {
        ReproError::Codec(e)
    }
}

/// The reproduction engine for one program.
///
/// This is the original blocking entry point, kept as a thin wrapper
/// that drives a [`ReproSession`] end to end. Use [`Reproducer::session`]
/// (or [`ReproSession::new`]) for staged execution, progress
/// observation, per-phase budgets, and checkpoint/resume.
#[derive(Debug)]
pub struct Reproducer<'p> {
    program: &'p Program,
    analysis: ProgramAnalysis,
    options: ReproOptions,
}

impl<'p> Reproducer<'p> {
    /// Creates a reproducer (running the static analysis once).
    pub fn new(program: &'p Program, options: ReproOptions) -> Self {
        Reproducer {
            program,
            analysis: ProgramAnalysis::analyze(program),
            options,
        }
    }

    /// The per-function static analysis (shared with other phases).
    pub fn analysis(&self) -> &ProgramAnalysis {
        &self.analysis
    }

    /// Opens a staged session on a failure dump, sharing this
    /// reproducer's precomputed static analysis.
    ///
    /// The dump and input are cloned into the session — a session owns
    /// its inputs so [`ReproSession::checkpoint`] can serialize them.
    ///
    /// # Errors
    ///
    /// [`ReproError::NotAFailureDump`] when the dump carries no failure.
    pub fn session(
        &self,
        failure_dump: &CoreDump,
        input: &[i64],
    ) -> Result<ReproSession<'p>, ReproError> {
        ReproSession::from_parts(
            self.program,
            self.analysis.clone(),
            failure_dump.clone(),
            input.to_vec(),
            self.options.clone(),
        )
    }

    /// Runs the full pipeline on a failure dump.
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    pub fn reproduce(
        &self,
        failure_dump: &CoreDump,
        input: &[i64],
    ) -> Result<ReproReport, ReproError> {
        self.session(failure_dump, input)?.run_to_end()
    }
}

/// Sanity helper used by tests and examples: does the program contain at
/// least one synchronization statement (a prerequisite for preemption
/// candidates to exist)?
pub fn has_sync_points(program: &Program) -> bool {
    program
        .funcs
        .iter()
        .any(|f| f.body.iter().any(Inst::is_sync))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stress::find_failure;
    use mcr_dump::DumpReason;
    use mcr_vm::Vm;

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    fn fig1_repro(options: ReproOptions) -> (mcr_lang::Program, ReproReport) {
        let p = mcr_lang::compile(FIG1).unwrap();
        let input = [0i64, 1];
        let sf = find_failure(&p, &input, 0..200_000, 1_000_000).expect("stress exposes");
        let r = Reproducer::new(&p, options);
        let report = r.reproduce(&sf.dump, &input).unwrap();
        (p, report)
    }

    #[test]
    fn end_to_end_temporal() {
        let (_p, report) = fig1_repro(ReproOptions::default());
        assert!(!report.deterministic_repro, "fig1 is a Heisenbug");
        assert!(report.search.reproduced, "must reproduce: {report:?}");
        // The x flag is among the CSVs.
        assert!(!report.csv_locs.is_empty());
        assert!(report.index.as_ref().unwrap().len() >= 4);
        assert!(report.failure_dump_bytes > 0);
        // Very few tries (paper: < 10 for most bugs).
        assert!(report.search.tries <= 20, "tries = {}", report.search.tries);
    }

    #[test]
    fn end_to_end_dependence() {
        let (_p, report) = fig1_repro(ReproOptions {
            strategy: Strategy::Dependence,
            ..Default::default()
        });
        assert!(report.search.reproduced);
        assert!(report.search.tries <= 20);
    }

    #[test]
    fn plain_chess_needs_no_fewer_tries() {
        let (_p, guided) = fig1_repro(ReproOptions::default());
        let (_p2, plain) = fig1_repro(ReproOptions {
            algorithm: Algorithm::Chess,
            ..Default::default()
        });
        assert!(plain.search.reproduced);
        assert!(guided.search.tries <= plain.search.tries);
    }

    #[test]
    fn instruction_count_mode_runs() {
        let (_p, report) = fig1_repro(ReproOptions {
            align_mode: AlignMode::InstructionCount,
            ..Default::default()
        });
        // The baseline may or may not reproduce fig1 (the run is short,
        // so the count lands close); the pipeline itself must complete
        // and produce comparable statistics.
        assert!(report.index.is_none());
        assert!(report.vars > 0);
    }

    #[test]
    fn non_failure_dump_is_rejected() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut vm = Vm::new(&p, &[0, 0]);
        let mut s = mcr_vm::DeterministicScheduler::new();
        mcr_vm::run(&mut vm, &mut s, &mut mcr_vm::NullObserver, 1_000_000);
        let dump = CoreDump::capture(&vm, ThreadId(0), DumpReason::Manual);
        let r = Reproducer::new(&p, ReproOptions::default());
        assert!(matches!(
            r.reproduce(&dump, &[0, 0]),
            Err(ReproError::NotAFailureDump)
        ));
    }

    #[test]
    fn sync_point_helper() {
        let p = mcr_lang::compile(FIG1).unwrap();
        assert!(has_sync_points(&p));
        let p2 = mcr_lang::compile("fn main() { }").unwrap();
        assert!(!has_sync_points(&p2));
    }

    #[test]
    fn builder_sets_every_knob() {
        let limits = TraverseLimits {
            max_depth: 3,
            max_paths: 99,
        };
        let options = ReproOptions::builder()
            .strategy(Strategy::Dependence)
            .align_mode(AlignMode::InstructionCount)
            .algorithm(Algorithm::Chess)
            .search(SearchConfig {
                max_tries: 7,
                ..Default::default()
            })
            .trace_window(1234)
            .trace_spill(mcr_slice::TraceSpill::segmented())
            .max_steps(5678)
            .limits(limits)
            .parallelism(2)
            .budget(Phase::Search, PhaseBudget::steps(10))
            .budget(Phase::Align, PhaseBudget::wall(Duration::from_secs(9)))
            .store(std::sync::Arc::new(crate::store::MemoryStore::unbounded()))
            .pool(minipool::Pool::new(3))
            .static_race(true)
            .build();
        assert_eq!(options.strategy, Strategy::Dependence);
        assert_eq!(options.align_mode, AlignMode::InstructionCount);
        assert_eq!(options.algorithm, Algorithm::Chess);
        assert_eq!(options.search.max_tries, 7);
        assert_eq!(options.trace_window, 1234);
        assert_eq!(options.trace_spill, mcr_slice::TraceSpill::segmented());
        assert_eq!(options.max_steps, 5678);
        assert_eq!(options.limits.max_depth, 3);
        assert_eq!(options.parallelism, 2);
        assert_eq!(
            options.budgets.get(Phase::Search),
            Some(PhaseBudget::steps(10))
        );
        assert_eq!(
            options.budgets.get(Phase::Align),
            Some(PhaseBudget::wall(Duration::from_secs(9)))
        );
        assert_eq!(options.budgets.get(Phase::Rank), None);
        assert!(options.store.is_some());
        assert_eq!(options.pool.as_ref().map(minipool::Pool::threads), Some(3));
        assert!(options.static_race);
    }
}
