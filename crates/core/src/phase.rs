//! The generic phase abstraction of the reproduction pipeline.
//!
//! Each of the five stages — Index → Align → Diff → Rank → Search — is a
//! unit struct implementing [`PipelinePhase`]: a *typed* phase with an
//! input artifact (`Input`, the upstream phase's output), an output
//! artifact (`Artifact`), a wire codec ([`PipelinePhase::encode`] /
//! [`PipelinePhase::decode`]), a per-phase budget hook
//! ([`PipelinePhase::budget`]), and a compute body that observes the
//! session's [`CancelToken`] and reports through
//! its [`PhaseObserver`](crate::PhaseObserver).
//!
//! [`ReproSession`] is a thin driver over these implementations (see
//! [`ReproSession::run`]): it resolves prerequisites, derives the
//! phase's content-addressed [`PhaseKey`](crate::PhaseKey), consults the
//! session's [`ArtifactStore`](crate::ArtifactStore) — rehydrating a hit
//! instead of computing — and persists fresh artifacts back. Everything
//! phase-*specific* lives here; everything phase-*generic* (keying,
//! caching, memoization, event plumbing) lives once, in the driver.
//!
//! The trait is sealed: the pipeline's phase set is the paper's, and the
//! driver relies on the five implementations agreeing with the
//! [`Phase`] enum.

use crate::artifact::{
    AlignmentArtifact, DumpDeltaArtifact, FailureIndexArtifact, RankedAccessesArtifact,
    SearchArtifact,
};
use crate::observe::{Phase, PhaseEvent};
use crate::pipeline::{AlignMode, PhaseBudget, ReproError};
use crate::session::ReproSession;
use mcr_dump::{
    reachable_vars, resolve_loc, CoreDump, DecodeError, DumpDiff, DumpReason, ResolvedVar,
};
use mcr_index::{AlignSignal, Aligner, Alignment};
use mcr_search::{annotate_with_race, find_schedule, CancelToken, SearchConfig};
use mcr_slice::{backward_slice, rank_csv_accesses, Strategy, TraceCollector};
use mcr_vm::{run_until, DeterministicScheduler, MemLoc, Outcome, Tee, ThreadId};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

mod sealed {
    /// Seals [`PipelinePhase`](super::PipelinePhase): the five stages of
    /// the paper's pipeline are the complete set.
    pub trait Sealed {}
    impl Sealed for super::IndexPhase {}
    impl Sealed for super::AlignPhase {}
    impl Sealed for super::DiffPhase {}
    impl Sealed for super::RankPhase {}
    impl Sealed for super::SearchPhase {}
}

/// One typed, cacheable stage of the reproduction pipeline.
///
/// See the [module docs](crate::phase) for how [`ReproSession::run`]
/// drives implementations generically.
pub trait PipelinePhase: sealed::Sealed {
    /// The upstream artifact this phase consumes ([`CoreDump`] for the
    /// first phase, which consumes the session's failure dump directly).
    type Input;

    /// The artifact this phase produces.
    type Artifact: Clone + PartialEq + std::fmt::Debug;

    /// The pipeline position this implementation occupies.
    const PHASE: Phase;

    /// Whether a fired cancel token refuses phase *entry*. True for
    /// every phase except the search, which always runs and converts
    /// cancellation into a partial artifact instead.
    const GUARDED_ENTRY: bool = true;

    /// Serializes the artifact on the [`mcr_dump::wire`] layout — the
    /// same bytes the session checkpoint embeds and the artifact store
    /// caches.
    fn encode(artifact: &Self::Artifact) -> Vec<u8>;

    /// Decodes an artifact (store rehydration, checkpoint resume).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated or malformed input.
    fn decode(bytes: &[u8]) -> Result<Self::Artifact, DecodeError>;

    /// The upstream artifact, when it has been produced.
    fn input<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Input>;

    /// This phase's artifact, when it has been produced.
    fn artifact<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Artifact>;

    /// Stores a produced (or rehydrated) artifact in the session.
    fn install(session: &mut ReproSession<'_>, artifact: Self::Artifact);

    /// The wall-clock/step budget configured for this phase.
    fn budget(session: &ReproSession<'_>) -> Option<PhaseBudget> {
        session.options().budgets.get(Self::PHASE)
    }

    /// Whether a freshly computed artifact may enter the store. Partial
    /// results — a cancelled or budget-cut search — must not poison the
    /// cache, since a later run with a larger budget would rehydrate
    /// them as if complete.
    fn cacheable(_artifact: &Self::Artifact) -> bool {
        true
    }

    /// Runs the phase. Implementations emit their own
    /// `Started`/`Stage`/`Finished`/`Interrupted` events and honor the
    /// session's cancel token and this phase's budget.
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    fn compute(session: &mut ReproSession<'_>) -> Result<Self::Artifact, ReproError>;
}

/// How many interruption polls share one `Instant::now()` read inside
/// the align/diff step loops (cancellation is checked on every poll —
/// an atomic load — only the wall clock is cached).
const WALL_POLL_PERIOD: u32 = 256;

/// Polls cancellation and a phase's wall-clock budget from inside a
/// `run_until` stop predicate.
struct Interrupt {
    cancel: CancelToken,
    deadline: Option<Instant>,
    polls: u32,
    expired: bool,
}

impl Interrupt {
    fn new(cancel: CancelToken, budget: Option<PhaseBudget>) -> Interrupt {
        Interrupt {
            cancel,
            deadline: budget
                .and_then(|b| b.wall)
                .map(|wall| Instant::now() + wall),
            polls: 0,
            expired: false,
        }
    }

    /// Whether the phase should stop now. Called once per VM step.
    fn fired(&mut self) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        if self.expired {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        let n = self.polls;
        self.polls = n.wrapping_add(1);
        if !n.is_multiple_of(WALL_POLL_PERIOD) {
            return false;
        }
        self.expired = Instant::now() >= deadline;
        self.expired
    }

    /// Converts an interruption into the phase's error (cancellation
    /// wins over budget expiry when both hold).
    fn error(&self, phase: Phase) -> ReproError {
        if self.cancel.is_cancelled() {
            ReproError::Cancelled(phase)
        } else {
            ReproError::BudgetExhausted(phase)
        }
    }

    fn interrupted(&self) -> bool {
        self.cancel.is_cancelled() || self.expired
    }
}

/// Step cap for a phase: the options default, tightened by the phase
/// budget when one is set.
fn effective_steps(default: u64, budget: Option<PhaseBudget>) -> u64 {
    match budget.and_then(|b| b.max_steps) {
        Some(cap) => default.min(cap),
        None => default,
    }
}

/// Phase 1: reverse engineering the failure's execution index (§3.2,
/// Algorithm 1). Under [`AlignMode::InstructionCount`] the artifact
/// carries no index.
#[derive(Debug, Clone, Copy)]
pub struct IndexPhase;

impl PipelinePhase for IndexPhase {
    type Input = CoreDump;
    type Artifact = FailureIndexArtifact;
    const PHASE: Phase = Phase::Index;

    fn encode(artifact: &Self::Artifact) -> Vec<u8> {
        artifact.to_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self::Artifact, DecodeError> {
        FailureIndexArtifact::from_bytes(bytes)
    }

    fn input<'s>(session: &'s ReproSession<'_>) -> Option<&'s CoreDump> {
        Some(&session.failure_dump)
    }

    fn artifact<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Artifact> {
        session.artifacts.index.as_ref()
    }

    fn install(session: &mut ReproSession<'_>, artifact: Self::Artifact) {
        session.artifacts.index = Some(artifact);
    }

    fn compute(s: &mut ReproSession<'_>) -> Result<Self::Artifact, ReproError> {
        s.emit(PhaseEvent::Started {
            phase: Phase::Index,
        });
        let t0 = Instant::now();
        let index = match s.options.align_mode {
            AlignMode::ExecutionIndex => {
                match mcr_index::reverse_index(s.program, s.analysis(), &s.failure_dump) {
                    Ok(idx) => Some(idx),
                    Err(e) => {
                        s.emit(PhaseEvent::Interrupted {
                            phase: Phase::Index,
                        });
                        return Err(e.into());
                    }
                }
            }
            AlignMode::InstructionCount => None,
        };
        let elapsed = t0.elapsed();
        s.emit(PhaseEvent::Finished {
            phase: Phase::Index,
            elapsed,
        });
        Ok(FailureIndexArtifact { index, elapsed })
    }
}

/// Phase 2: the deterministic passing run — aligned-point location
/// (§3.3, Fig. 7) plus the sync/shared-access log the search needs.
#[derive(Debug, Clone, Copy)]
pub struct AlignPhase;

impl PipelinePhase for AlignPhase {
    type Input = FailureIndexArtifact;
    type Artifact = AlignmentArtifact;
    const PHASE: Phase = Phase::Align;

    fn encode(artifact: &Self::Artifact) -> Vec<u8> {
        artifact.to_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self::Artifact, DecodeError> {
        AlignmentArtifact::from_bytes(bytes)
    }

    fn input<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Input> {
        session.artifacts.index.as_ref()
    }

    fn artifact<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Artifact> {
        session.artifacts.align.as_ref()
    }

    fn install(session: &mut ReproSession<'_>, artifact: Self::Artifact) {
        session.artifacts.align = Some(artifact);
    }

    fn compute(s: &mut ReproSession<'_>) -> Result<Self::Artifact, ReproError> {
        // Validation precedes the Started event so observers never see a
        // phase start that can have no terminal event.
        let focus = s.failure_dump.focus;
        if focus.0 as usize >= 1 && s.program.funcs.is_empty() {
            return Err(ReproError::NoSuchThread(focus));
        }
        s.emit(PhaseEvent::Started {
            phase: Phase::Align,
        });
        let budget = Self::budget(s);
        let max_steps = effective_steps(s.options.max_steps, budget);
        let mut guard = Interrupt::new(s.cancel.clone(), budget);

        let t0 = Instant::now();
        let mut vm = s.new_vm();
        let mut logger = mcr_search::SyncLogger::new();
        let index = Self::input(s).expect("index phase ran").index.clone();
        let (alignment, deterministic_repro, passing_run) = match &index {
            Some(idx) => {
                let mut aligner = Aligner::new(s.program, s.analysis(), focus, idx);
                let outcome = {
                    let mut tee = Tee {
                        a: &mut aligner,
                        b: &mut logger,
                    };
                    let mut sched = DeterministicScheduler::new();
                    run_until(&mut vm, &mut sched, &mut tee, max_steps, |_| guard.fired())
                };
                if guard.interrupted() {
                    s.emit(PhaseEvent::Interrupted {
                        phase: Phase::Align,
                    });
                    return Err(guard.error(Phase::Align));
                }
                let deterministic =
                    matches!(outcome, Outcome::Crashed(f) if f.same_bug(&s.failure));
                (aligner.finish(), deterministic, logger.finish())
            }
            None => {
                // Instruction-count alignment (Table 5 baseline): one
                // full logged run; the aligned point is found on the
                // fly, so no second execution is needed.
                let target_instrs = s.failure_dump.focus_thread().instrs;
                let failure_pc = s.failure.pc;
                let mut sched = DeterministicScheduler::new();
                let mut reached: Option<u64> = None;
                let mut aligned_at: Option<u64> = None;
                let mut scanning = true;
                let outcome = run_until(&mut vm, &mut sched, &mut logger, max_steps, |vm| {
                    if guard.fired() {
                        return true;
                    }
                    if scanning {
                        if let Some(th) = vm.threads().get(focus.0 as usize) {
                            if th.instrs >= target_instrs {
                                if reached.is_none() {
                                    reached = Some(vm.steps());
                                }
                                // Scan for the failure PC from here on.
                                if th.pc() == Some(failure_pc) {
                                    aligned_at = Some(vm.steps());
                                    scanning = false;
                                } else if vm.steps() > reached.unwrap() + 200_000 {
                                    // Give up the PC scan after a grace
                                    // window.
                                    aligned_at = reached;
                                    scanning = false;
                                }
                            }
                        }
                    }
                    false
                });
                if guard.interrupted() {
                    s.emit(PhaseEvent::Interrupted {
                        phase: Phase::Align,
                    });
                    return Err(guard.error(Phase::Align));
                }
                // If the run ended before the scan concluded, align at
                // the point the count was reached (or the end).
                let step = aligned_at
                    .or(reached)
                    .unwrap_or_else(|| vm.steps().saturating_sub(1));
                let deterministic =
                    matches!(outcome, Outcome::Crashed(f) if f.same_bug(&s.failure));
                let alignment = Alignment {
                    signal: AlignSignal::Closest,
                    step,
                    remaining: 0,
                };
                (alignment, deterministic, logger.finish())
            }
        };
        let elapsed = t0.elapsed();
        s.emit(PhaseEvent::Finished {
            phase: Phase::Align,
            elapsed,
        });
        Ok(AlignmentArtifact {
            alignment,
            deterministic_repro,
            passing_run,
            elapsed,
        })
    }
}

/// Phase 3: replay to the aligned point, capture the aligned dump and
/// the dependence trace, and compare the dumps to find the critical
/// shared variables (§4).
#[derive(Debug, Clone, Copy)]
pub struct DiffPhase;

impl PipelinePhase for DiffPhase {
    type Input = AlignmentArtifact;
    type Artifact = DumpDeltaArtifact;
    const PHASE: Phase = Phase::Diff;

    fn encode(artifact: &Self::Artifact) -> Vec<u8> {
        artifact.to_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self::Artifact, DecodeError> {
        DumpDeltaArtifact::from_bytes(bytes)
    }

    fn input<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Input> {
        session.artifacts.align.as_ref()
    }

    fn artifact<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Artifact> {
        session.artifacts.delta.as_ref()
    }

    fn install(session: &mut ReproSession<'_>, artifact: Self::Artifact) {
        session.artifacts.delta = Some(artifact);
    }

    fn compute(s: &mut ReproSession<'_>) -> Result<Self::Artifact, ReproError> {
        s.emit(PhaseEvent::Started { phase: Phase::Diff });
        let budget = Self::budget(s);
        let max_steps = effective_steps(s.options.max_steps, budget);
        let mut guard = Interrupt::new(s.cancel.clone(), budget);
        let alignment = Self::input(s).expect("align ran").alignment;
        let focus = s.failure_dump.focus;

        // Replay to the aligned point; capture dump + trace.
        let t0 = Instant::now();
        let mut replay = s.new_vm();
        let mut collector = TraceCollector::with_spill(
            s.program,
            s.analysis(),
            s.options.trace_window,
            s.effective_trace_spill(),
        );
        {
            let mut sched = DeterministicScheduler::new();
            let stop_after = alignment.step;
            run_until(&mut replay, &mut sched, &mut collector, max_steps, |vm| {
                guard.fired() || vm.steps() > stop_after
            });
        }
        if guard.interrupted() {
            s.emit(PhaseEvent::Interrupted { phase: Phase::Diff });
            return Err(guard.error(Phase::Diff));
        }
        let aligned_focus = if (focus.0 as usize) < replay.threads().len() {
            focus
        } else {
            ThreadId(0)
        };
        let aligned_dump = CoreDump::capture(&replay, aligned_focus, DumpReason::Aligned);
        let trace = collector.finish();
        let replay_elapsed = t0.elapsed();
        s.emit(PhaseEvent::Stage {
            phase: Phase::Diff,
            stage: "replay",
            elapsed: replay_elapsed,
        });

        // Dump comparison ("parse" covers encode/decode and traversal,
        // the GDB-dominated cost of the paper's Table 6).
        let t0 = Instant::now();
        let failure_bytes = mcr_dump::encode(&s.failure_dump);
        let aligned_bytes = mcr_dump::encode(&aligned_dump);
        let failure_reparsed = match mcr_dump::decode(&failure_bytes) {
            Ok(dump) => dump,
            Err(e) => {
                s.emit(PhaseEvent::Interrupted { phase: Phase::Diff });
                return Err(ReproError::Codec(e));
            }
        };
        let aligned_reparsed = match mcr_dump::decode(&aligned_bytes) {
            Ok(dump) => dump,
            Err(e) => {
                s.emit(PhaseEvent::Interrupted { phase: Phase::Diff });
                return Err(ReproError::Codec(e));
            }
        };
        let vars_fail = reachable_vars(&failure_reparsed, s.options.limits);
        let vars_aligned = reachable_vars(&aligned_reparsed, s.options.limits);
        let parse_elapsed = t0.elapsed();
        s.emit(PhaseEvent::Stage {
            phase: Phase::Diff,
            stage: "dump-parse",
            elapsed: parse_elapsed,
        });

        let t0 = Instant::now();
        let diff = DumpDiff::compare_maps(&vars_fail, &vars_aligned);
        let diff_elapsed = t0.elapsed();
        s.emit(PhaseEvent::Stage {
            phase: Phase::Diff,
            stage: "diff",
            elapsed: diff_elapsed,
        });

        // Resolve CSV paths to passing-run locations.
        let csv_locs: Vec<MemLoc> = diff
            .csvs
            .iter()
            .filter_map(|path| resolve_loc(&aligned_dump, path))
            .filter_map(|rv| match rv {
                ResolvedVar::Global(g) => Some(MemLoc::Global(g)),
                ResolvedVar::GlobalElem(g, i) => Some(MemLoc::GlobalElem(g, i)),
                ResolvedVar::Heap(o, i) => Some(MemLoc::Heap(o, i)),
                _ => None,
            })
            .collect();

        let elapsed = replay_elapsed + parse_elapsed + diff_elapsed;
        s.emit(PhaseEvent::Finished {
            phase: Phase::Diff,
            elapsed,
        });
        Ok(DumpDeltaArtifact {
            failure_dump_bytes: failure_bytes.len(),
            aligned_dump_bytes: aligned_bytes.len(),
            vars: diff.vars_a,
            diffs: diff.diff_count(),
            shared: diff.shared_compared,
            csv_paths: diff.csvs,
            csv_locs,
            trace,
            replay_elapsed,
            parse_elapsed,
            diff_elapsed,
        })
    }
}

/// Phase 4: prioritize the CSV accesses of the dependence trace
/// (temporal closeness or dependence distance, per
/// [`ReproOptions::strategy`](crate::ReproOptions::strategy)).
#[derive(Debug, Clone, Copy)]
pub struct RankPhase;

impl PipelinePhase for RankPhase {
    type Input = DumpDeltaArtifact;
    type Artifact = RankedAccessesArtifact;
    const PHASE: Phase = Phase::Rank;

    fn encode(artifact: &Self::Artifact) -> Vec<u8> {
        artifact.to_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self::Artifact, DecodeError> {
        RankedAccessesArtifact::from_bytes(bytes)
    }

    fn input<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Input> {
        session.artifacts.delta.as_ref()
    }

    fn artifact<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Artifact> {
        session.artifacts.ranked.as_ref()
    }

    fn install(session: &mut ReproSession<'_>, artifact: Self::Artifact) {
        session.artifacts.ranked = Some(artifact);
    }

    fn compute(s: &mut ReproSession<'_>) -> Result<Self::Artifact, ReproError> {
        s.emit(PhaseEvent::Started { phase: Phase::Rank });
        let t0 = Instant::now();
        let ranked = {
            let delta = Self::input(s).expect("diff ran");
            let trace = &delta.trace;
            let csv_set: HashSet<MemLoc> = delta.csv_locs.iter().copied().collect();
            let aligned_serial = trace.last().map_or(0, |e| e.serial);
            let slice = match s.options.strategy {
                Strategy::Dependence => {
                    let criteria: Vec<u64> = trace.last().map(|e| e.serial).into_iter().collect();
                    Some(backward_slice(trace, &criteria))
                }
                Strategy::Temporal => None,
            };
            rank_csv_accesses(
                trace,
                aligned_serial,
                &csv_set,
                s.options.strategy,
                slice.as_ref(),
            )
        };
        let elapsed = t0.elapsed();
        s.emit(PhaseEvent::Finished {
            phase: Phase::Rank,
            elapsed,
        });
        Ok(RankedAccessesArtifact { ranked, elapsed })
    }
}

/// Phase 5: the directed schedule search (§5, Algorithm 2).
///
/// Cancellation mid-search does *not* error: the phase completes with a
/// partial artifact whose result carries `cancelled = true` — which is
/// also why such artifacts are excluded from the store (see
/// [`PipelinePhase::cacheable`]).
#[derive(Debug, Clone, Copy)]
pub struct SearchPhase;

impl PipelinePhase for SearchPhase {
    type Input = RankedAccessesArtifact;
    type Artifact = SearchArtifact;
    const PHASE: Phase = Phase::Search;
    const GUARDED_ENTRY: bool = false;

    fn encode(artifact: &Self::Artifact) -> Vec<u8> {
        artifact.to_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self::Artifact, DecodeError> {
        SearchArtifact::from_bytes(bytes)
    }

    fn input<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Input> {
        session.artifacts.ranked.as_ref()
    }

    fn artifact<'s>(session: &'s ReproSession<'_>) -> Option<&'s Self::Artifact> {
        session.artifacts.search.as_ref()
    }

    fn install(session: &mut ReproSession<'_>, artifact: Self::Artifact) {
        session.artifacts.search = Some(artifact);
    }

    fn cacheable(artifact: &Self::Artifact) -> bool {
        // Partial results must not be mistaken for the search's answer
        // by a warm run with a larger budget.
        !artifact.result.cancelled && !artifact.result.cut_off
    }

    fn compute(s: &mut ReproSession<'_>) -> Result<Self::Artifact, ReproError> {
        s.emit(PhaseEvent::Started {
            phase: Phase::Search,
        });
        let t0 = Instant::now();
        let (result, elapsed) = {
            let ranked = &Self::input(s).expect("rank ran").ranked;
            let delta = s.artifacts.delta.as_ref().expect("diff ran");
            let align = s.artifacts.align.as_ref().expect("align ran");
            let csv_set: HashSet<MemLoc> = delta.csv_locs.iter().copied().collect();

            let mut priorities: HashMap<(u64, MemLoc, bool), u32> = HashMap::new();
            for r in ranked {
                let e = priorities
                    .entry((r.step, r.loc, r.is_write))
                    .or_insert(r.priority);
                *e = (*e).min(r.priority);
            }
            // Under `static_race`, the session's race verdicts prune
            // provably-Solo preemption points and rank May-Race blocks
            // ahead of statically clean ones (`race_verdicts` is `None`
            // unless the knob is on and the fault plan is empty).
            let (candidates, future) =
                annotate_with_race(&align.passing_run, &csv_set, &priorities, s.race_verdicts());
            let fresh = s.new_vm();
            let budget = Self::budget(s);
            let mut search_config = SearchConfig {
                parallelism: s.options.parallelism.max(1),
                cancel: s.cancel.clone(),
                // The session-level executor handle (a fleet's shared
                // pool) wins over one set directly on the search config.
                pool: s.options.pool.clone().or(s.options.search.pool.clone()),
                ..s.options.search.clone()
            };
            if let Some(b) = budget {
                if let Some(wall) = b.wall {
                    search_config.time_budget =
                        Some(search_config.time_budget.map_or(wall, |t| t.min(wall)));
                }
                if let Some(steps) = b.max_steps {
                    search_config.max_steps = search_config.max_steps.min(steps);
                }
            }
            let result = find_schedule(
                &fresh,
                &candidates,
                &future,
                s.failure,
                s.options.algorithm,
                &search_config,
            );
            (result, t0.elapsed())
        };
        // A cancelled search still Finishes (with a partial artifact,
        // `result.cancelled` set); Interrupted is reserved for phases
        // that produced nothing.
        s.emit(PhaseEvent::Finished {
            phase: Phase::Search,
            elapsed,
        });
        Ok(SearchArtifact { result, elapsed })
    }
}
