//! Stress testing: producing the failure core dump.
//!
//! The paper acquires its failure dumps by stress-testing the buggy
//! programs on multiple cores until the reported failure appears (§6,
//! "while stress testing is very expensive, it is not part of our
//! proposed technique"). The equivalent here: run under the seeded
//! bursty [`StressScheduler`] over a seed range until the run crashes.

use mcr_dump::CoreDump;
use mcr_lang::Program;
use mcr_search::CancelToken;
use mcr_vm::{run, FaultSpec, MemModel, NullObserver, Outcome, StressScheduler, Vm};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Execution environment a stress campaign (and its dump capture) runs
/// under: the memory model and any injected faults. The default is the
/// plain SC, fault-free environment every pre-existing caller gets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunConfig {
    /// Memory consistency model.
    pub mem_model: MemModel,
    /// Fault-injection plan.
    pub faults: Vec<FaultSpec>,
}

impl RunConfig {
    /// Builds a VM for `program`/`input` running under this environment.
    fn vm<'p>(&self, program: &'p Program, input: &[i64]) -> Vm<'p> {
        Vm::new(program, input)
            .with_mem_model(self.mem_model)
            .with_faults(&self.faults)
    }
}

/// Outcome of a stress campaign.
#[derive(Debug, Clone)]
pub struct StressFailure {
    /// The seed that exposed the failure.
    pub seed: u64,
    /// Seeds tried before (and including) the failing one.
    pub seeds_tried: u64,
    /// The failure core dump.
    pub dump: CoreDump,
    /// Steps the failing run executed.
    pub steps: u64,
    /// Instructions the failing run retired.
    pub instrs: u64,
}

impl StressFailure {
    /// Packages the failure dump as a segmented container — the
    /// shippable form: checksummed fixed-size frames with a footer
    /// index, so a triage worker in another process can validate the
    /// framing in O(1) and rehydrate byte ranges on demand instead of
    /// decoding the whole blob (`mcr_dump::decode_segmented` reverses
    /// it). `mcr_dump::DUMP_FRAME_SIZE` is the default frame size.
    pub fn dump_segmented(&self, frame_size: usize) -> mcr_dump::SegmentedBytes {
        mcr_dump::encode_segmented(&self.dump, frame_size)
    }

    /// [`StressFailure::dump_segmented`] with the frame size derived
    /// from a store's measured per-phase residency histogram
    /// ([`crate::store::measured_frame_size`]) instead of the fixed
    /// `mcr_dump::DUMP_FRAME_SIZE`: a triage fleet that already knows
    /// its artifact mix sizes shipped dumps to match, so dump frames
    /// and cache entries tile the same transport the same way. Frame
    /// size is residency-only — the decoded dump is identical at any
    /// granularity.
    pub fn dump_segmented_measured(
        &self,
        stats: &crate::store::StoreStats,
    ) -> mcr_dump::SegmentedBytes {
        self.dump_segmented(crate::store::measured_frame_size(stats))
    }
}

/// Runs the program under random interleavings until it crashes.
///
/// Returns `None` when no seed in `seeds` exposes a failure within
/// `max_steps` per run.
pub fn find_failure(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
) -> Option<StressFailure> {
    find_failure_cfg(program, input, seeds, max_steps, &RunConfig::default())
}

/// [`find_failure`] under an explicit execution environment (memory
/// model and fault plan).
pub fn find_failure_cfg(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    cfg: &RunConfig,
) -> Option<StressFailure> {
    let start = seeds.start;
    for seed in seeds {
        let mut vm = cfg.vm(program, input);
        let mut sched = StressScheduler::new(seed);
        let outcome = run(&mut vm, &mut sched, &mut NullObserver, max_steps);
        if let Outcome::Crashed(_) = outcome {
            let dump = CoreDump::capture_failure(&vm).expect("crashed");
            return Some(StressFailure {
                seed,
                seeds_tried: seed - start + 1,
                dump,
                steps: vm.steps(),
                instrs: vm.instrs(),
            });
        }
    }
    None
}

/// Parallel seed scan: like [`find_failure`] but fanning the seed range
/// over `parallelism` worker threads (a work-stealing pool). The *lowest*
/// crashing seed wins, so the returned failure — seed, tried count, and
/// dump — is bit-identical to the serial scan; `parallelism <= 1` simply
/// runs [`find_failure`].
pub fn find_failure_par(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    parallelism: usize,
) -> Option<StressFailure> {
    if parallelism <= 1 {
        return find_failure(program, input, seeds, max_steps);
    }
    find_failure_pool(
        program,
        input,
        seeds,
        max_steps,
        &minipool::Pool::new(parallelism),
    )
}

/// [`find_failure_par`] under an explicit execution environment.
pub fn find_failure_par_cfg(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    parallelism: usize,
    cfg: &RunConfig,
) -> Option<StressFailure> {
    if parallelism <= 1 {
        return find_failure_cfg(program, input, seeds, max_steps, cfg);
    }
    scan(
        program,
        input,
        seeds,
        max_steps,
        &minipool::Pool::new(parallelism),
        None,
        cfg,
    )
}

/// [`find_failure_par`] over an *injected* executor handle — the form a
/// fleet scheduler uses so that every stress scan it launches draws from
/// one shared worker budget instead of constructing its own pool.
pub fn find_failure_pool(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    pool: &minipool::Pool,
) -> Option<StressFailure> {
    scan(
        program,
        input,
        seeds,
        max_steps,
        pool,
        None,
        &RunConfig::default(),
    )
}

/// Cancellable parallel seed scan.
///
/// Firing `cancel` (from any thread) stops workers from starting new
/// seed runs; the scan then returns the lowest crashing seed found **if
/// and only if** every lower seed already completed — i.e. any `Some`
/// answer is exactly the seed the uninterrupted serial scan would
/// return. When cancellation leaves that undetermined (or nothing
/// crashed), the scan returns `None`.
pub fn find_failure_par_cancellable(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    parallelism: usize,
    cancel: &CancelToken,
) -> Option<StressFailure> {
    scan(
        program,
        input,
        seeds,
        max_steps,
        &minipool::Pool::new(parallelism.max(1)),
        Some(cancel),
        &RunConfig::default(),
    )
}

#[allow(clippy::too_many_arguments)]
fn scan(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    pool: &minipool::Pool,
    cancel: Option<&CancelToken>,
    cfg: &RunConfig,
) -> Option<StressFailure> {
    let start = seeds.start;
    let n = usize::try_from(seeds.end.saturating_sub(start)).unwrap_or(usize::MAX);
    // Lowest crashing seed found so far (u64::MAX = none).
    let winner = AtomicU64::new(u64::MAX);
    // With cancellation in play, per-seed completion flags let the scan
    // prove (or refuse to claim) serial equivalence afterwards.
    let done: Option<Vec<AtomicBool>> =
        cancel.map(|_| (0..n).map(|_| AtomicBool::new(false)).collect());
    pool.for_each_index(n, |i| {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return;
            }
        }
        let seed = start + i as u64;
        // A seed above the current winner can never become the answer
        // (`fetch_min` only lowers it); seeds below always run.
        if seed > winner.load(Ordering::Acquire) {
            return;
        }
        if crashes(program, input, seed, max_steps, cfg) {
            winner.fetch_min(seed, Ordering::AcqRel);
        }
        if let Some(flags) = &done {
            flags[i].store(true, Ordering::Release);
        }
    });
    let seed = winner.load(Ordering::Acquire);
    if seed == u64::MAX {
        return None;
    }
    if let (Some(token), Some(flags)) = (cancel, &done) {
        // A skipped seed is always above the final winner (the winner
        // only decreases), so incompleteness below it can only come from
        // cancellation — in which case a lower seed might still crash
        // and the serial answer is unknown: refuse to guess.
        if token.is_cancelled() {
            let w_idx = (seed - start) as usize;
            if !flags[..w_idx].iter().all(|f| f.load(Ordering::Acquire)) {
                return None;
            }
        }
    }
    // Replay the winning seed to capture the dump: stress runs are pure
    // functions of the seed, so this reproduces the identical crash state
    // without shipping VM snapshots across threads.
    Some(capture_at_seed(program, input, seed, max_steps, start, cfg))
}

/// Does one stress run at `seed` crash? (Parallel-scan probe: workers
/// only need the verdict; the winning seed's dump is captured once, by
/// [`capture_at_seed`], after the scan settles.)
fn crashes(program: &Program, input: &[i64], seed: u64, max_steps: u64, cfg: &RunConfig) -> bool {
    let mut vm = cfg.vm(program, input);
    let mut sched = StressScheduler::new(seed);
    matches!(
        run(&mut vm, &mut sched, &mut NullObserver, max_steps),
        Outcome::Crashed(_)
    )
}

/// Re-runs the (known-crashing) `seed` and packages its failure dump.
fn capture_at_seed(
    program: &Program,
    input: &[i64],
    seed: u64,
    max_steps: u64,
    start: u64,
    cfg: &RunConfig,
) -> StressFailure {
    let mut vm = cfg.vm(program, input);
    let mut sched = StressScheduler::new(seed);
    let outcome = run(&mut vm, &mut sched, &mut NullObserver, max_steps);
    debug_assert!(matches!(outcome, Outcome::Crashed(_)));
    let dump = CoreDump::capture_failure(&vm).expect("crashed");
    StressFailure {
        seed,
        seeds_tried: seed - start + 1,
        dump,
        steps: vm.steps(),
        instrs: vm.instrs(),
    }
}

/// Verifies that the program passes deterministically (the Heisenbug
/// premise: the single-core canonical run does not fail).
pub fn passes_deterministically(program: &Program, input: &[i64], max_steps: u64) -> bool {
    passes_deterministically_cfg(program, input, max_steps, &RunConfig::default())
}

/// [`passes_deterministically`] under an explicit execution environment.
pub fn passes_deterministically_cfg(
    program: &Program,
    input: &[i64],
    max_steps: u64,
    cfg: &RunConfig,
) -> bool {
    let mut vm = cfg.vm(program, input);
    let mut sched = mcr_vm::DeterministicScheduler::new();
    matches!(
        run(&mut vm, &mut sched, &mut NullObserver, max_steps),
        Outcome::Completed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const RACE: &str = r#"
        global x: int;
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (i > 0) { x = 1; p = null; }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    #[test]
    fn heisenbug_premise_holds() {
        let p = mcr_lang::compile(RACE).unwrap();
        assert!(passes_deterministically(&p, &[], 100_000));
        let f = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        assert!(f.dump.failure().is_some());
        assert!(f.steps > 0);
    }

    #[test]
    fn stress_is_replayable() {
        let p = mcr_lang::compile(RACE).unwrap();
        let f1 = find_failure(&p, &[], 0..100_000, 100_000).unwrap();
        let f2 = find_failure(&p, &[], 0..100_000, 100_000).unwrap();
        assert_eq!(f1.seed, f2.seed);
        assert_eq!(f1.dump, f2.dump);
    }

    #[test]
    fn segmented_failure_dump_ships_and_rehydrates() {
        let p = mcr_lang::compile(RACE).unwrap();
        let f = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        let seg = f.dump_segmented(mcr_dump::DUMP_FRAME_SIZE);
        // The container survives a byte-level process hop and decodes
        // to the identical dump.
        let shipped =
            mcr_dump::SegmentedBytes::parse(seg.as_bytes().to_vec()).expect("framing valid");
        assert_eq!(
            mcr_dump::decode_segmented(&shipped).expect("payload decodes"),
            f.dump
        );
    }

    #[test]
    fn measured_dump_framing_follows_the_store_histogram() {
        use crate::store::{ArtifactStore, MemoryStore, PhaseKey};
        use mcr_dump::wire::ContentHash;

        let p = mcr_lang::compile(RACE).unwrap();
        let f = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");

        // An unmeasured store falls back to the fixed default framing.
        let store = MemoryStore::unbounded();
        assert_eq!(
            f.dump_segmented_measured(&store.stats()).as_bytes(),
            f.dump_segmented(mcr_dump::DUMP_FRAME_SIZE).as_bytes()
        );

        // A warm histogram re-frames the container to the measured
        // size — and the re-framed payload still decodes identically.
        let key = PhaseKey::derive(ContentHash::of(b"unit"), crate::Phase::Search, None);
        store.put(&key, &[0u8; 1024]);
        let measured = crate::store::measured_frame_size(&store.stats());
        let seg = f.dump_segmented_measured(&store.stats());
        assert_eq!(seg.as_bytes(), f.dump_segmented(measured).as_bytes());
        let shipped =
            mcr_dump::SegmentedBytes::parse(seg.as_bytes().to_vec()).expect("framing valid");
        assert_eq!(
            mcr_dump::decode_segmented(&shipped).expect("payload decodes"),
            f.dump
        );
    }

    #[test]
    fn no_failure_in_clean_program() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        assert!(find_failure(&p, &[], 0..50, 10_000).is_none());
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let p = mcr_lang::compile(RACE).unwrap();
        let serial = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        let par = find_failure_par(&p, &[], 0..100_000, 100_000, 4).expect("stress exposes");
        assert_eq!(serial.seed, par.seed);
        assert_eq!(serial.seeds_tried, par.seeds_tried);
        assert_eq!(serial.steps, par.steps);
        assert_eq!(serial.instrs, par.instrs);
        assert_eq!(serial.dump, par.dump);
    }

    #[test]
    fn parallel_scan_handles_no_failure() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        assert!(find_failure_par(&p, &[], 0..50, 10_000, 4).is_none());
    }

    #[test]
    fn repeated_scans_are_seed_deterministic() {
        // Equivalence, not wall time: CI may be single-core, so the
        // property pinned is that serial, parallel, and injected-pool
        // scans all settle on the identical winner, run after run.
        let p = mcr_lang::compile(RACE).unwrap();
        let serial = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        for _ in 0..2 {
            let par = find_failure_par(&p, &[], 0..100_000, 100_000, 3).unwrap();
            assert_eq!(
                (par.seed, par.seeds_tried),
                (serial.seed, serial.seeds_tried)
            );
            assert_eq!(par.dump, serial.dump);
        }
        let limit = minipool::Limit::new(2);
        let pool = minipool::Pool::with_limit(4, limit.clone());
        let pooled = find_failure_pool(&p, &[], 0..100_000, 100_000, &pool).unwrap();
        assert_eq!(pooled.seed, serial.seed);
        assert_eq!(pooled.dump, serial.dump);
        assert_eq!(limit.available(), limit.capacity(), "permits returned");
    }

    #[test]
    fn uncancelled_cancellable_scan_matches_serial() {
        let p = mcr_lang::compile(RACE).unwrap();
        let serial = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        let token = CancelToken::new();
        let scan = find_failure_par_cancellable(&p, &[], 0..100_000, 100_000, 4, &token)
            .expect("token never fired");
        assert_eq!(scan.seed, serial.seed);
        assert_eq!(scan.seeds_tried, serial.seeds_tried);
        assert_eq!(scan.dump, serial.dump);
    }

    #[test]
    fn pre_cancelled_scan_returns_nothing() {
        let p = mcr_lang::compile(RACE).unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert!(find_failure_par_cancellable(&p, &[], 0..100_000, 100_000, 4, &token).is_none());
    }

    #[test]
    fn mid_scan_cancellation_never_contradicts_the_serial_winner() {
        // Fire the token from another thread at staggered delays; any
        // answer the cancelled scan *does* return must be the serial
        // winner — never a later seed that merely crashed first.
        let p = mcr_lang::compile(RACE).unwrap();
        let serial = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        for delay_us in [0u64, 50, 200, 1_000, 5_000] {
            let token = CancelToken::new();
            let fired = token.clone();
            let result = std::thread::scope(|s| {
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    fired.cancel();
                });
                find_failure_par_cancellable(&p, &[], 0..100_000, 100_000, 4, &token)
            });
            if let Some(sf) = result {
                assert_eq!(sf.seed, serial.seed, "delay {delay_us}us");
                assert_eq!(sf.seeds_tried, serial.seeds_tried);
                assert_eq!(sf.dump, serial.dump);
            }
        }
    }
}
