//! Stress testing: producing the failure core dump.
//!
//! The paper acquires its failure dumps by stress-testing the buggy
//! programs on multiple cores until the reported failure appears (§6,
//! "while stress testing is very expensive, it is not part of our
//! proposed technique"). The equivalent here: run under the seeded
//! bursty [`StressScheduler`] over a seed range until the run crashes.

use mcr_dump::CoreDump;
use mcr_lang::Program;
use mcr_vm::{run, NullObserver, Outcome, StressScheduler, Vm};

/// Outcome of a stress campaign.
#[derive(Debug, Clone)]
pub struct StressFailure {
    /// The seed that exposed the failure.
    pub seed: u64,
    /// Seeds tried before (and including) the failing one.
    pub seeds_tried: u64,
    /// The failure core dump.
    pub dump: CoreDump,
    /// Steps the failing run executed.
    pub steps: u64,
    /// Instructions the failing run retired.
    pub instrs: u64,
}

/// Runs the program under random interleavings until it crashes.
///
/// Returns `None` when no seed in `seeds` exposes a failure within
/// `max_steps` per run.
pub fn find_failure(
    program: &Program,
    input: &[i64],
    seeds: std::ops::Range<u64>,
    max_steps: u64,
) -> Option<StressFailure> {
    let start = seeds.start;
    for seed in seeds {
        let mut vm = Vm::new(program, input);
        let mut sched = StressScheduler::new(seed);
        let outcome = run(&mut vm, &mut sched, &mut NullObserver, max_steps);
        if let Outcome::Crashed(_) = outcome {
            let dump = CoreDump::capture_failure(&vm).expect("crashed");
            return Some(StressFailure {
                seed,
                seeds_tried: seed - start + 1,
                dump,
                steps: vm.steps(),
                instrs: vm.instrs(),
            });
        }
    }
    None
}

/// Verifies that the program passes deterministically (the Heisenbug
/// premise: the single-core canonical run does not fail).
pub fn passes_deterministically(program: &Program, input: &[i64], max_steps: u64) -> bool {
    let mut vm = Vm::new(program, input);
    let mut sched = mcr_vm::DeterministicScheduler::new();
    matches!(
        run(&mut vm, &mut sched, &mut NullObserver, max_steps),
        Outcome::Completed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const RACE: &str = r#"
        global x: int;
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (i > 0) { x = 1; p = null; }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    #[test]
    fn heisenbug_premise_holds() {
        let p = mcr_lang::compile(RACE).unwrap();
        assert!(passes_deterministically(&p, &[], 100_000));
        let f = find_failure(&p, &[], 0..100_000, 100_000).expect("stress exposes");
        assert!(f.dump.failure().is_some());
        assert!(f.steps > 0);
    }

    #[test]
    fn stress_is_replayable() {
        let p = mcr_lang::compile(RACE).unwrap();
        let f1 = find_failure(&p, &[], 0..100_000, 100_000).unwrap();
        let f2 = find_failure(&p, &[], 0..100_000, 100_000).unwrap();
        assert_eq!(f1.seed, f2.seed);
        assert_eq!(f1.dump, f2.dump);
    }

    #[test]
    fn no_failure_in_clean_program() {
        let p = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        assert!(find_failure(&p, &[], 0..50, 10_000).is_none());
    }
}
