//! Content-addressed artifact stores.
//!
//! Every phase of a [`ReproSession`](crate::ReproSession) is keyed by a
//! [`PhaseKey`]: a stable [`ContentHash`] over *(program fingerprint,
//! failing input, failure dump, options, upstream artifact)* computed on
//! the [`mcr_dump::wire`] encoding. Because each phase is a
//! deterministic function of exactly that material, two phase units with
//! the same key produce byte-identical artifacts — so a session whose
//! key hits an [`ArtifactStore`] skips the phase entirely and rehydrates
//! the cached bytes (observed as
//! [`PhaseEvent::CacheHit`](crate::PhaseEvent::CacheHit)).
//!
//! This is the dedup-by-content idea of ShareJIT-style code caches
//! applied to MCR's per-phase artifacts: a triage service ingesting
//! streams of near-duplicate core dumps from the same bug pays for each
//! distinct `(dump, input, options)` pipeline once, fleet-wide.
//!
//! Three stores ship here:
//!
//! * [`NullStore`] — caches nothing (the default of a bare session),
//! * [`MemoryStore`] — an in-memory LRU bounded by total artifact bytes,
//! * [`BytesStore`] — an unbounded store whose whole content serializes
//!   to one byte string on the same wire codec the session checkpoints
//!   use, so a warm cache can be persisted or shipped between processes
//!   like a checkpoint.
//!
//! All stores are `Send + Sync` and internally synchronized: one store
//! handle (an `Arc`) is shared by every session of a fleet.

use crate::observe::Phase;
use mcr_dump::wire::{ContentHash, ContentHasher, Reader, Writer};
use mcr_dump::DecodeError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"MCRC";
const VERSION: u8 = 1;

/// Identity of one unit of phase work: the phase plus the content hash
/// of everything that determines its artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseKey {
    /// The pipeline phase this key belongs to.
    pub phase: Phase,
    /// Content hash of the phase's full input closure: session basis
    /// (program fingerprint, input, failure dump, options) chained with
    /// the upstream artifact's content hash.
    pub hash: ContentHash,
}

impl PhaseKey {
    /// Derives the key for `phase` from the session `basis` and the
    /// hash of the immediate upstream artifact (`None` for the first
    /// phase).
    pub fn derive(basis: ContentHash, phase: Phase, upstream: Option<ContentHash>) -> PhaseKey {
        let mut h = ContentHasher::new();
        h.update(b"MCRPK1");
        h.update(&basis.to_le_bytes());
        h.update(&[phase.index() as u8]);
        match upstream {
            None => h.update(&[0]),
            Some(u) => {
                h.update(&[1]);
                h.update(&u.to_le_bytes());
            }
        }
        PhaseKey {
            phase,
            hash: h.finish128(),
        }
    }
}

impl fmt::Display for PhaseKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.phase, self.hash)
    }
}

/// Counters every store tracks; a fleet summary reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// `put` calls that stored a new entry.
    pub inserts: u64,
    /// Entries dropped to stay under a capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total artifact bytes currently resident.
    pub bytes: usize,
}

impl StoreStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared, content-addressed artifact cache.
///
/// Implementations are internally synchronized (`&self` methods) so one
/// handle serves a whole fleet. A store is a *cache*, never a source of
/// truth: `get` may forget anything at any time, and `put` may decline
/// to retain.
pub trait ArtifactStore: Send + Sync + fmt::Debug {
    /// The artifact bytes stored under `key`, if any.
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>>;

    /// Stores `bytes` under `key` (last write wins; identical keys carry
    /// identical bytes by construction).
    fn put(&self, key: &PhaseKey, bytes: &[u8]);

    /// Lookup/insert/eviction counters.
    fn stats(&self) -> StoreStats;

    /// Whether this store can ever return a hit. [`NullStore`] says
    /// `false`, which lets the session driver skip key derivation and
    /// artifact hashing entirely — a plain uncached pipeline run pays
    /// nothing for the caching machinery.
    fn is_caching(&self) -> bool {
        true
    }
}

/// A store that caches nothing: every lookup misses, every insert is
/// dropped. The default for sessions constructed without a store.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullStore;

impl ArtifactStore for NullStore {
    fn get(&self, _key: &PhaseKey) -> Option<Vec<u8>> {
        None
    }

    fn put(&self, _key: &PhaseKey, _bytes: &[u8]) {}

    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    fn is_caching(&self) -> bool {
        false
    }
}

#[derive(Debug, Default)]
struct MemInner {
    map: HashMap<PhaseKey, (Vec<u8>, u64)>,
    tick: u64,
    stats: StoreStats,
}

/// An in-memory LRU store bounded by total artifact bytes.
///
/// Eviction drops least-recently-used entries until the configured byte
/// capacity holds again; a single entry larger than the whole capacity
/// is retained alone (evicting it immediately would make the store
/// useless for exactly the artifacts worth caching most).
#[derive(Debug, Default)]
pub struct MemoryStore {
    capacity: Option<usize>,
    inner: Mutex<MemInner>,
}

impl MemoryStore {
    /// An unbounded store.
    pub fn unbounded() -> MemoryStore {
        MemoryStore::default()
    }

    /// A store that evicts LRU entries beyond `bytes` total capacity.
    pub fn with_capacity(bytes: usize) -> MemoryStore {
        MemoryStore {
            capacity: Some(bytes),
            inner: Mutex::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().expect("artifact store poisoned")
    }

    /// Every resident entry, ordered by key (deterministic snapshots).
    fn entries_sorted(&self) -> Vec<(PhaseKey, Vec<u8>)> {
        let inner = self.lock();
        let mut entries: Vec<(PhaseKey, Vec<u8>)> = inner
            .map
            .iter()
            .map(|(k, (b, _))| (*k, b.clone()))
            .collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }
}

impl ArtifactStore for MemoryStore {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((bytes, used)) => {
                *used = tick;
                let out = bytes.clone();
                inner.stats.hits += 1;
                Some(out)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.insert(*key, (bytes.to_vec(), tick)) {
            Some((old, _)) => {
                inner.stats.bytes -= old.len();
            }
            None => {
                inner.stats.inserts += 1;
                inner.stats.entries += 1;
            }
        }
        inner.stats.bytes += bytes.len();
        if let Some(cap) = self.capacity {
            while inner.stats.bytes > cap && inner.stats.entries > 1 {
                let victim = inner
                    .map
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| *k)
                    .expect("entries > 1");
                let (dropped, _) = inner.map.remove(&victim).expect("victim resident");
                inner.stats.bytes -= dropped.len();
                inner.stats.entries -= 1;
                inner.stats.evictions += 1;
            }
        }
    }

    fn stats(&self) -> StoreStats {
        self.lock().stats
    }
}

/// An unbounded store whose entire content round-trips through one byte
/// string on the session-checkpoint wire codec (`MCRC` framing), so a
/// warm cache can be persisted to disk, shipped to another triage
/// worker, and restored with [`BytesStore::from_bytes`].
///
/// Storage and accounting delegate to an unbounded [`MemoryStore`];
/// this type adds only the snapshot layer.
#[derive(Debug, Default)]
pub struct BytesStore {
    inner: MemoryStore,
}

impl BytesStore {
    /// An empty store.
    pub fn new() -> BytesStore {
        BytesStore::default()
    }

    /// Serializes every entry to bytes (deterministic: entries are
    /// ordered by key).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u8(VERSION);
        let entries = self.inner.entries_sorted();
        w.uvarint(entries.len() as u64);
        for (key, bytes) in entries {
            w.u8(key.phase.index() as u8);
            w.hash(key.hash);
            w.bytes(&bytes);
        }
        w.into_bytes()
    }

    /// Restores a store from [`BytesStore::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<BytesStore, DecodeError> {
        let mut r = Reader::new(bytes);
        r.expect_magic(MAGIC)?;
        let version = r.u8()?;
        if version != VERSION {
            return r.err(format!("unsupported store version {version}"));
        }
        let n = r.len("store entries")?;
        let store = BytesStore::new();
        for _ in 0..n {
            let tag = r.u8()? as usize;
            let Some(&phase) = crate::observe::PHASES.get(tag) else {
                return r.err(format!("bad phase tag {tag}"));
            };
            let hash = r.hash()?;
            store.inner.put(&PhaseKey { phase, hash }, r.bytes()?);
        }
        r.finish()?;
        Ok(store)
    }
}

impl ArtifactStore for BytesStore {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        self.inner.put(key, bytes);
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

/// A stable fingerprint of a compiled program: the FNV-128 digest of the
/// IR's canonical `Hash` byte stream. Part of every session's key basis,
/// so artifacts of different programs can never be confused even when
/// dumps and inputs coincide.
pub fn program_fingerprint(program: &mcr_lang::Program) -> ContentHash {
    use std::hash::Hash;
    let mut h = ContentHasher::new();
    h.update(b"MCRP1");
    program.hash(&mut h);
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(phase: Phase, seed: u8) -> PhaseKey {
        PhaseKey::derive(ContentHash::of(&[seed]), phase, None)
    }

    #[test]
    fn phase_key_derivation_is_stable_and_distinct() {
        let basis = ContentHash::of(b"basis");
        let a = PhaseKey::derive(basis, Phase::Index, None);
        let b = PhaseKey::derive(basis, Phase::Index, None);
        assert_eq!(a, b);
        let up = ContentHash::of(b"artifact");
        assert_ne!(a, PhaseKey::derive(basis, Phase::Align, Some(up)));
        assert_ne!(
            PhaseKey::derive(basis, Phase::Align, Some(up)),
            PhaseKey::derive(basis, Phase::Align, Some(ContentHash::of(b"other"))),
        );
        assert_ne!(
            a.hash,
            PhaseKey::derive(ContentHash::of(b"other basis"), Phase::Index, None).hash
        );
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = MemoryStore::unbounded();
        let k = key(Phase::Index, 1);
        assert_eq!(store.get(&k), None);
        store.put(&k, b"artifact");
        assert_eq!(store.get(&k).as_deref(), Some(b"artifact".as_ref()));
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 8);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let store = MemoryStore::with_capacity(8);
        let (a, b, c) = (
            key(Phase::Index, 1),
            key(Phase::Index, 2),
            key(Phase::Index, 3),
        );
        store.put(&a, b"aaaa");
        store.put(&b, b"bbbb");
        // Touch `a` so `b` is now least recently used.
        assert!(store.get(&a).is_some());
        store.put(&c, b"cccc");
        assert!(store.get(&a).is_some(), "recently used survives");
        assert!(store.get(&b).is_none(), "LRU entry evicted");
        assert!(store.get(&c).is_some());
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 8);
    }

    #[test]
    fn oversized_entry_is_retained_alone() {
        let store = MemoryStore::with_capacity(4);
        let k = key(Phase::Search, 9);
        store.put(&k, b"waytoobig");
        assert!(store.get(&k).is_some());
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn bytes_store_round_trips_through_the_wire_codec() {
        let store = BytesStore::new();
        store.put(&key(Phase::Index, 1), b"one");
        store.put(&key(Phase::Search, 2), b"two");
        let blob = store.to_bytes();
        let restored = BytesStore::from_bytes(&blob).unwrap();
        assert_eq!(
            restored.get(&key(Phase::Index, 1)).as_deref(),
            Some(b"one".as_ref())
        );
        assert_eq!(
            restored.get(&key(Phase::Search, 2)).as_deref(),
            Some(b"two".as_ref())
        );
        assert_eq!(restored.stats().entries, 2);
        // Deterministic snapshot.
        assert_eq!(blob, restored.to_bytes());
        // Truncations never panic.
        for cut in 0..blob.len() {
            assert!(BytesStore::from_bytes(&blob[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn null_store_forgets_everything() {
        let store = NullStore;
        let k = key(Phase::Rank, 0);
        store.put(&k, b"bytes");
        assert_eq!(store.get(&k), None);
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn program_fingerprint_distinguishes_programs() {
        let a = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        let a2 = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        let b = mcr_lang::compile("global x: int; fn main() { x = 2; }").unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a2));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }
}
