//! Content-addressed artifact stores.
//!
//! Every phase of a [`ReproSession`](crate::ReproSession) is keyed by a
//! [`PhaseKey`]: a stable [`ContentHash`] over *(program fingerprint,
//! failing input, failure dump, options, upstream artifact)* computed on
//! the [`mcr_dump::wire`] encoding. Because each phase is a
//! deterministic function of exactly that material, two phase units with
//! the same key produce byte-identical artifacts — so a session whose
//! key hits an [`ArtifactStore`] skips the phase entirely and rehydrates
//! the cached bytes (observed as
//! [`PhaseEvent::CacheHit`](crate::PhaseEvent::CacheHit)).
//!
//! This is the dedup-by-content idea of ShareJIT-style code caches
//! applied to MCR's per-phase artifacts: a triage service ingesting
//! streams of near-duplicate core dumps from the same bug pays for each
//! distinct `(dump, input, options)` pipeline once, fleet-wide.
//!
//! Five stores ship here:
//!
//! * [`NullStore`] — caches nothing (the default of a bare session),
//! * [`MemoryStore`] — an in-memory LRU bounded by total artifact bytes,
//! * [`BytesStore`] — an unbounded store whose whole content serializes
//!   to one byte string on the same wire codec the session checkpoints
//!   use, so a warm cache can be persisted or shipped between processes
//!   like a checkpoint,
//! * [`SegStore`] — a read-mostly store over one segmented container
//!   ([`mcr_dump::wire::SegmentedBytes`]): entries rehydrate by byte
//!   range on demand, verifying each fixed-size segment at most once,
//!   so a multi-megabyte warm snapshot costs only the ranges actually
//!   touched (the mmap-shaped backend of the streaming-artifacts layer),
//! * [`ShardedStore`] — a composite that partitions the key space across
//!   N inner backends by consistent hashing on the key's
//!   [`ContentHash`], so one logical cache scales horizontally and
//!   shards can be snapshotted/rehydrated independently.
//!
//! Every store also slices its counters by phase kind
//! ([`StoreStats::per_phase`]): a triage deployment sizes capacity from
//! *which* phases churn, not just the global hit rate.
//!
//! All stores are `Send + Sync` and internally synchronized: one store
//! handle (an `Arc`) is shared by every session of a fleet.

use crate::observe::Phase;
use mcr_dump::wire::{ContentHash, ContentHasher, Reader, SegmentWriter, SegmentedBytes, Writer};
use mcr_dump::DecodeError;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 4] = b"MCRC";
const VERSION: u8 = 1;

/// Magic prefix of a [`SegStore`] directory.
const SEG_STORE_MAGIC: &[u8; 4] = b"MCSS";
/// [`SegStore`] directory format version.
const SEG_STORE_VERSION: u8 = 1;
/// Default frame size for [`SegStore`] snapshots: one entry read touches
/// few frames, framing overhead stays under 1%.
pub const SEG_STORE_FRAME_SIZE: usize = 4096;

/// Identity of one unit of phase work: the phase plus the content hash
/// of everything that determines its artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseKey {
    /// The pipeline phase this key belongs to.
    pub phase: Phase,
    /// Content hash of the phase's full input closure: session basis
    /// (program fingerprint, input, failure dump, options) chained with
    /// the upstream artifact's content hash.
    pub hash: ContentHash,
}

impl PhaseKey {
    /// Derives the key for `phase` from the session `basis` and the
    /// hash of the immediate upstream artifact (`None` for the first
    /// phase).
    pub fn derive(basis: ContentHash, phase: Phase, upstream: Option<ContentHash>) -> PhaseKey {
        let mut h = ContentHasher::new();
        h.update(b"MCRPK1");
        h.update(&basis.to_le_bytes());
        h.update(&[phase.index() as u8]);
        match upstream {
            None => h.update(&[0]),
            Some(u) => {
                h.update(&[1]);
                h.update(&u.to_le_bytes());
            }
        }
        PhaseKey {
            phase,
            hash: h.finish128(),
        }
    }

    /// Derives a *function-scoped* key: content-addressed by one
    /// function's fingerprint alone (plus the phase kind), with no
    /// session basis folded in.
    ///
    /// This is the unit the fleet caches actually share. A session-level
    /// [`PhaseKey::derive`] key changes whenever *anything* about the
    /// session changes; a function-scoped key is identical for every
    /// program revision — and every *other* program — containing the
    /// byte-identical function, so a one-function edit invalidates
    /// exactly one compile unit and one analysis unit. The domain tag
    /// differs from [`PhaseKey::derive`]'s, so the two key families can
    /// never collide even within the same phase kind.
    pub fn derive_for_function(func: ContentHash, phase: Phase) -> PhaseKey {
        let mut h = ContentHasher::new();
        h.update(b"MCRPKF1");
        h.update(&func.to_le_bytes());
        h.update(&[phase.index() as u8]);
        PhaseKey {
            phase,
            hash: h.finish128(),
        }
    }
}

impl fmt::Display for PhaseKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.phase, self.hash)
    }
}

/// One phase kind's slice of a store's counters — the capacity-planning
/// histogram a triage service reports. Global totals answer "how well
/// does the cache work"; the per-phase rows answer "*which* phases
/// churn" (e.g. large search artifacts being evicted while tiny rank
/// artifacts stay resident), which is what informs shard sizing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// `get` calls for this phase kind that found their key.
    pub hits: u64,
    /// `get` calls for this phase kind that missed.
    pub misses: u64,
    /// `put` calls that stored a new entry of this phase kind.
    pub inserts: u64,
    /// Entries of this phase kind dropped to stay under a capacity
    /// bound.
    pub evictions: u64,
    /// Entries of this phase kind currently resident.
    pub entries: usize,
    /// Artifact bytes of this phase kind currently resident.
    pub bytes: usize,
}

impl PhaseStats {
    fn absorb(&mut self, o: &PhaseStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.inserts += o.inserts;
        self.evictions += o.evictions;
        self.entries += o.entries;
        self.bytes += o.bytes;
    }

    /// Mean resident artifact size of this phase kind, or `None` when
    /// no entries of the kind are resident.
    pub fn mean_entry_size(&self) -> Option<usize> {
        (self.entries > 0).then(|| self.bytes / self.entries)
    }
}

/// Cross-program function-sharing counters reported by a
/// [`CorpusManifest`]. Plain stores leave this zeroed; the manifest
/// decorator fills it from its program→function sharing graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManifestStats {
    /// Distinct programs registered with the manifest.
    pub programs: u64,
    /// Total program→function references (every program contributes one
    /// per function it contains).
    pub function_refs: u64,
    /// Distinct function fingerprints across the whole corpus.
    pub distinct_functions: u64,
    /// Distinct functions referenced by two or more programs.
    pub shared_functions: u64,
}

impl ManifestStats {
    /// Fraction of function references that deduplicate onto an
    /// already-known function, in `[0, 1]` (0 when nothing registered).
    /// A corpus of N identical programs approaches `1 − 1/N`.
    pub fn dedup_ratio(&self) -> f64 {
        if self.function_refs == 0 {
            0.0
        } else {
            1.0 - self.distinct_functions as f64 / self.function_refs as f64
        }
    }

    fn absorb(&mut self, o: &ManifestStats) {
        self.programs += o.programs;
        self.function_refs += o.function_refs;
        self.distinct_functions += o.distinct_functions;
        self.shared_functions += o.shared_functions;
    }
}

/// Counters every store tracks; a fleet summary reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls that found their key.
    pub hits: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// `put` calls that stored a new entry.
    pub inserts: u64,
    /// Entries dropped to stay under a capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total artifact bytes currently resident.
    pub bytes: usize,
    /// The same counters sliced by phase kind, indexed by
    /// [`Phase::index`] (see [`StoreStats::phase`]): the five pipeline
    /// phases followed by the `Compile` and `StaticRace` pre-phases.
    pub per_phase: [PhaseStats; 7],
    /// Cross-program function-sharing counters (zero unless the store is
    /// wrapped in a [`CorpusManifest`]).
    pub manifest: ManifestStats,
}

impl StoreStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters for one phase kind.
    pub fn phase(&self, phase: Phase) -> PhaseStats {
        self.per_phase[phase.index()]
    }

    /// Adds every counter of `o` into `self` (how a sharded composite
    /// aggregates its shards).
    pub fn absorb(&mut self, o: &StoreStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.inserts += o.inserts;
        self.evictions += o.evictions;
        self.entries += o.entries;
        self.bytes += o.bytes;
        for (mine, theirs) in self.per_phase.iter_mut().zip(&o.per_phase) {
            mine.absorb(theirs);
        }
        self.manifest.absorb(&o.manifest);
    }

    /// Mean resident artifact size across the per-phase histogram
    /// ([`StoreStats::per_phase`]), or `None` when nothing is resident.
    ///
    /// Computed from the histogram rows rather than the global
    /// counters so a composite that absorbs shards with zeroed globals
    /// still reports a usable mean.
    pub fn mean_entry_size(&self) -> Option<usize> {
        let (entries, bytes) = self
            .per_phase
            .iter()
            .fold((0usize, 0usize), |(e, b), p| (e + p.entries, b + p.bytes));
        (entries > 0).then(|| bytes / entries)
    }
}

/// Frame size (bytes) to use for segmented containers serving the
/// workload `stats` describes, derived from the measured per-phase
/// residency histogram instead of the fixed [`SEG_STORE_FRAME_SIZE`] /
/// `mcr_dump::DUMP_FRAME_SIZE` constants.
///
/// A frame near the mean entry size keeps a typical rehydration to a
/// couple of segment touches while bounding resident bytes to roughly
/// one artifact; the mean is clamped to `[512, 65536]` so a store full
/// of tiny rank artifacts doesn't shred the container into thousands of
/// frames (framing overhead) and one giant search artifact doesn't
/// force whole-blob residency. Falls back to [`SEG_STORE_FRAME_SIZE`]
/// when `stats` has no resident entries to measure.
///
/// Purely a residency/latency knob: frame size never changes decoded
/// content, so it is excluded from phase keys and checkpoints.
pub fn measured_frame_size(stats: &StoreStats) -> usize {
    stats
        .mean_entry_size()
        .map_or(SEG_STORE_FRAME_SIZE, |mean| mean.clamp(512, 65_536))
}

/// A shared, content-addressed artifact cache.
///
/// Implementations are internally synchronized (`&self` methods) so one
/// handle serves a whole fleet. A store is a *cache*, never a source of
/// truth: `get` may forget anything at any time, and `put` may decline
/// to retain.
pub trait ArtifactStore: Send + Sync + fmt::Debug {
    /// The artifact bytes stored under `key`, if any.
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>>;

    /// Stores `bytes` under `key` (last write wins; identical keys carry
    /// identical bytes by construction).
    fn put(&self, key: &PhaseKey, bytes: &[u8]);

    /// Lookup/insert/eviction counters.
    fn stats(&self) -> StoreStats;

    /// Whether this store can ever return a hit. [`NullStore`] says
    /// `false`, which lets the session driver skip key derivation and
    /// artifact hashing entirely — a plain uncached pipeline run pays
    /// nothing for the caching machinery.
    fn is_caching(&self) -> bool {
        true
    }
}

/// A store that caches nothing: every lookup misses, every insert is
/// dropped. The default for sessions constructed without a store.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullStore;

impl ArtifactStore for NullStore {
    fn get(&self, _key: &PhaseKey) -> Option<Vec<u8>> {
        None
    }

    fn put(&self, _key: &PhaseKey, _bytes: &[u8]) {}

    fn stats(&self) -> StoreStats {
        StoreStats::default()
    }

    fn is_caching(&self) -> bool {
        false
    }
}

#[derive(Debug, Default)]
struct MemInner {
    map: HashMap<PhaseKey, (Vec<u8>, u64)>,
    tick: u64,
    stats: StoreStats,
}

/// An in-memory LRU store bounded by total artifact bytes.
///
/// Eviction drops least-recently-used entries until the configured byte
/// capacity holds again; a single entry larger than the whole capacity
/// is retained alone (evicting it immediately would make the store
/// useless for exactly the artifacts worth caching most).
///
/// Plain byte-LRU is *cost-blind*: a 120-byte index artifact frees
/// almost nothing when evicted yet costs a full phase re-run to rebuild,
/// while one 128 KB diff artifact frees a thousand times the space. A
/// store built with [`MemoryStore::with_capacity_and_floor`] therefore
/// protects entries at or under the floor: under pressure it picks its
/// LRU victim among the entries *larger* than the floor, and only when
/// no large entry remains does it fall back to plain LRU (which keeps
/// eviction terminating and the capacity bound honest).
#[derive(Debug, Default)]
pub struct MemoryStore {
    capacity: Option<usize>,
    /// Entries of at most this many bytes are evicted only when no
    /// larger victim exists.
    floor: usize,
    inner: Mutex<MemInner>,
}

impl MemoryStore {
    /// An unbounded store.
    pub fn unbounded() -> MemoryStore {
        MemoryStore::default()
    }

    /// A store that evicts LRU entries beyond `bytes` total capacity.
    pub fn with_capacity(bytes: usize) -> MemoryStore {
        MemoryStore {
            capacity: Some(bytes),
            floor: 0,
            inner: Mutex::default(),
        }
    }

    /// A capacity-bounded store that additionally protects small
    /// entries: artifacts of at most `floor` bytes are only evicted when
    /// no larger entry is left to drop.
    pub fn with_capacity_and_floor(bytes: usize, floor: usize) -> MemoryStore {
        MemoryStore {
            capacity: Some(bytes),
            floor,
            inner: Mutex::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().expect("artifact store poisoned")
    }

    /// Every resident entry, ordered by key — a deterministic snapshot.
    ///
    /// This clones every value eagerly, doubling resident bytes for the
    /// duration; migration and measurement paths should prefer
    /// [`MemoryStore::for_each_entry`] (borrowed values, one at a time)
    /// or [`MemoryStore::entry_sizes`] (no values at all).
    pub fn entries(&self) -> Vec<(PhaseKey, Vec<u8>)> {
        let mut entries = Vec::new();
        self.for_each_entry(|k, b| entries.push((*k, b.to_vec())));
        entries
    }

    /// Visits every resident entry in key order, borrowing each value in
    /// place — the zero-copy walk shard migration and churn-probe replay
    /// use, so moving a warm cache never doubles resident bytes.
    ///
    /// The store's lock is held for the whole walk: `f` must not call
    /// back into this store (other stores are fine — that is exactly the
    /// migration pattern).
    pub fn for_each_entry(&self, mut f: impl FnMut(&PhaseKey, &[u8])) {
        let inner = self.lock();
        let mut keys: Vec<PhaseKey> = inner.map.keys().copied().collect();
        keys.sort_unstable();
        for k in &keys {
            let (bytes, _) = &inner.map[k];
            f(k, bytes);
        }
    }

    /// Every resident entry's key and size in key order, without
    /// touching the values — what capacity measurement needs.
    pub fn entry_sizes(&self) -> Vec<(PhaseKey, usize)> {
        let mut sizes = Vec::new();
        self.for_each_entry(|k, b| sizes.push((*k, b.len())));
        sizes
    }
}

impl ArtifactStore for MemoryStore {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let kind = key.phase.index();
        match inner.map.get_mut(key) {
            Some((bytes, used)) => {
                *used = tick;
                let out = bytes.clone();
                inner.stats.hits += 1;
                inner.stats.per_phase[kind].hits += 1;
                Some(out)
            }
            None => {
                inner.stats.misses += 1;
                inner.stats.per_phase[kind].misses += 1;
                None
            }
        }
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let kind = key.phase.index();
        match inner.map.insert(*key, (bytes.to_vec(), tick)) {
            Some((old, _)) => {
                inner.stats.bytes -= old.len();
                inner.stats.per_phase[kind].bytes -= old.len();
            }
            None => {
                inner.stats.inserts += 1;
                inner.stats.entries += 1;
                inner.stats.per_phase[kind].inserts += 1;
                inner.stats.per_phase[kind].entries += 1;
            }
        }
        inner.stats.bytes += bytes.len();
        inner.stats.per_phase[kind].bytes += bytes.len();
        if let Some(cap) = self.capacity {
            while inner.stats.bytes > cap && inner.stats.entries > 1 {
                // Prefer the LRU entry among those above the small-entry
                // protection floor; plain LRU only when none is left.
                let victim = inner
                    .map
                    .iter()
                    .filter(|(_, (b, _))| b.len() > self.floor)
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| *k)
                    .or_else(|| {
                        inner
                            .map
                            .iter()
                            .min_by_key(|(_, (_, used))| *used)
                            .map(|(k, _)| *k)
                    })
                    .expect("entries > 1");
                let (dropped, _) = inner.map.remove(&victim).expect("victim resident");
                let vkind = victim.phase.index();
                inner.stats.bytes -= dropped.len();
                inner.stats.entries -= 1;
                inner.stats.evictions += 1;
                inner.stats.per_phase[vkind].bytes -= dropped.len();
                inner.stats.per_phase[vkind].entries -= 1;
                inner.stats.per_phase[vkind].evictions += 1;
            }
        }
    }

    fn stats(&self) -> StoreStats {
        self.lock().stats
    }
}

/// An unbounded store whose entire content round-trips through one byte
/// string on the session-checkpoint wire codec (`MCRC` framing), so a
/// warm cache can be persisted to disk, shipped to another triage
/// worker, and restored with [`BytesStore::from_bytes`].
///
/// Storage and accounting delegate to an unbounded [`MemoryStore`];
/// this type adds only the snapshot layer.
#[derive(Debug, Default)]
pub struct BytesStore {
    inner: MemoryStore,
}

impl BytesStore {
    /// An empty store.
    pub fn new() -> BytesStore {
        BytesStore::default()
    }

    /// Serializes every entry to bytes (deterministic: entries are
    /// ordered by key). Values are streamed out borrowed, never cloned.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u8(VERSION);
        w.uvarint(self.inner.stats().entries as u64);
        self.inner.for_each_entry(|key, bytes| {
            w.u8(key.phase.index() as u8);
            w.hash(key.hash);
            w.bytes(bytes);
        });
        w.into_bytes()
    }

    /// Snapshots the store into a [`SegStore`] container (see
    /// [`SegStore::snapshot`]): the segmented, lazily-rehydratable
    /// counterpart of [`BytesStore::to_bytes`].
    pub fn to_segmented(&self, frame_size: usize) -> Vec<u8> {
        SegStore::snapshot(&self.inner, frame_size)
    }

    /// Restores a store from [`BytesStore::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<BytesStore, DecodeError> {
        let mut r = Reader::new(bytes);
        r.expect_magic(MAGIC)?;
        let version = r.u8()?;
        if version != VERSION {
            return r.err(format!("unsupported store version {version}"));
        }
        let n = r.len("store entries")?;
        let store = BytesStore::new();
        for _ in 0..n {
            let tag = r.u8()? as usize;
            let Some(phase) = Phase::from_index(tag) else {
                return r.err(format!("bad phase tag {tag}"));
            };
            let hash = r.hash()?;
            store.inner.put(&PhaseKey { phase, hash }, r.bytes()?);
        }
        r.finish()?;
        Ok(store)
    }
}

impl ArtifactStore for BytesStore {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        self.inner.put(key, bytes);
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

/// Segment-level access counters of a [`SegStore`]: how many segment
/// touches its range reads performed, and how many were first touches
/// that had to verify the segment checksum. The difference is work the
/// lazy representation skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegAccessStats {
    /// Segments touched by entry rehydrations (with repetition).
    pub touches: u64,
    /// Touches that verified a segment for the first time.
    pub verified: u64,
}

impl SegAccessStats {
    /// Fraction of segment touches that found the segment already
    /// verified, in `[0, 1]` (0 when nothing was read). This is the
    /// "segment hit rate" the streaming benchmarks report: high means
    /// entries cluster in few segments and re-reads are near-free.
    pub fn hit_rate(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            (self.touches - self.verified) as f64 / self.touches as f64
        }
    }
}

#[derive(Debug)]
struct SegInner {
    /// Per-segment "checksum already verified" bitmap.
    verified: Vec<bool>,
    /// Entries written after the snapshot was taken.
    overlay: HashMap<PhaseKey, Vec<u8>>,
    stats: StoreStats,
    access: SegAccessStats,
}

/// A read-mostly [`ArtifactStore`] over one segmented container.
///
/// The container (built by [`SegStore::snapshot`] /
/// [`BytesStore::to_segmented`]) holds a directory (key → byte range)
/// followed by every entry's bytes, all packaged as a
/// [`SegmentedBytes`] stream of fixed-size checksummed frames. Opening
/// the store parses the header/footer and the directory — O(directory),
/// not O(snapshot) — and `get` rehydrates exactly the byte range of the
/// requested entry, verifying each touched segment's checksum at most
/// once across the store's lifetime (an mmap-shaped access pattern:
/// first touch faults and validates, later touches are free).
///
/// `put` lands in an in-memory overlay, so a warm snapshot keeps
/// absorbing new artifacts; the overlay is *not* part of the container
/// (re-snapshot through a [`BytesStore`] to persist it). A corrupt
/// segment surfaces as a cache miss, never as corrupt artifact bytes —
/// the store is a cache, not a source of truth.
#[derive(Debug)]
pub struct SegStore {
    seg: SegmentedBytes,
    /// Payload offset where the concatenated entry bytes begin.
    entries_base: usize,
    directory: HashMap<PhaseKey, (usize, usize)>,
    inner: Mutex<SegInner>,
}

impl SegStore {
    /// Serializes every entry of `store` into a segmented container:
    /// an 8-byte LE directory length, the directory (`MCSS` magic,
    /// version, count, then per entry: phase tag, key hash, offset
    /// varint, length varint), then the entry bytes back to back —
    /// streamed through a [`SegmentWriter`] with two borrowed walks
    /// ([`MemoryStore::entry_sizes`] + [`MemoryStore::for_each_entry`]),
    /// so snapshotting never clones the store's values.
    pub fn snapshot(store: &MemoryStore, frame_size: usize) -> Vec<u8> {
        let sizes = store.entry_sizes();
        let mut dir = Writer::new();
        dir.raw(SEG_STORE_MAGIC);
        dir.u8(SEG_STORE_VERSION);
        dir.uvarint(sizes.len() as u64);
        let mut offset = 0u64;
        for (key, len) in &sizes {
            dir.u8(key.phase.index() as u8);
            dir.hash(key.hash);
            dir.uvarint(offset);
            dir.uvarint(*len as u64);
            offset += *len as u64;
        }
        let dir = dir.into_bytes();
        let mut w = SegmentWriter::new(frame_size);
        w.write(&(dir.len() as u64).to_le_bytes());
        w.write(&dir);
        store.for_each_entry(|_, bytes| w.write(bytes));
        w.finish().into_bytes()
    }

    /// Opens a snapshot container.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on corrupt framing or a malformed directory. Only
    /// the segments holding the directory are checksum-verified here.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<SegStore, DecodeError> {
        SegStore::from_segmented(SegmentedBytes::parse(bytes)?)
    }

    /// Opens an already-parsed container (see [`SegStore::from_bytes`]).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a malformed directory.
    pub fn from_segmented(seg: SegmentedBytes) -> Result<SegStore, DecodeError> {
        let fail = |offset: usize, msg: &str| DecodeError {
            msg: msg.to_string(),
            offset,
        };
        let total = seg.total_len() as usize;
        if total < 8 {
            return Err(fail(total, "segment store payload too short"));
        }
        let dir_len_bytes = seg.read_range(0, 8)?;
        let dir_len = u64::from_le_bytes(dir_len_bytes.try_into().expect("8 bytes")) as usize;
        if dir_len > total - 8 {
            return Err(fail(0, "segment store directory overruns payload"));
        }
        let dir = seg.read_range(8, dir_len)?;
        let entries_base = 8 + dir_len;
        let entries_len = total - entries_base;
        let mut r = Reader::new(&dir);
        r.expect_magic(SEG_STORE_MAGIC)?;
        let version = r.u8()?;
        if version != SEG_STORE_VERSION {
            return r.err(format!("unsupported segment store version {version}"));
        }
        let count = r.len("segment store directory")?;
        let mut directory = HashMap::with_capacity(count.min(65536));
        let mut stats = StoreStats::default();
        for _ in 0..count {
            let tag = r.u8()? as usize;
            let Some(phase) = Phase::from_index(tag) else {
                return r.err(format!("bad phase tag {tag}"));
            };
            let hash = r.hash()?;
            let off = r.uvarint()? as usize;
            let len = r.uvarint()? as usize;
            if off.checked_add(len).is_none_or(|end| end > entries_len) {
                return r.err("directory entry out of bounds");
            }
            let key = PhaseKey { phase, hash };
            if directory.insert(key, (off, len)).is_some() {
                return r.err(format!("duplicate directory key {key}"));
            }
            stats.entries += 1;
            stats.bytes += len;
            stats.per_phase[phase.index()].entries += 1;
            stats.per_phase[phase.index()].bytes += len;
        }
        r.finish()?;
        // The directory reads above already verified the leading
        // segments; record that so entry reads near the front are hits.
        let mut verified = vec![false; seg.segment_count()];
        let covered = entries_base.div_ceil(seg.frame_size()).min(verified.len());
        for v in verified.iter_mut().take(covered) {
            *v = true;
        }
        Ok(SegStore {
            seg,
            entries_base,
            directory,
            inner: Mutex::new(SegInner {
                verified,
                overlay: HashMap::new(),
                stats,
                access: SegAccessStats::default(),
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SegInner> {
        self.inner.lock().expect("segment store poisoned")
    }

    /// Number of snapshot entries in the directory (overlay excluded).
    pub fn snapshot_entries(&self) -> usize {
        self.directory.len()
    }

    /// Bytes of the underlying container (what actually stays resident,
    /// as opposed to [`StoreStats::bytes`], which reports the logical
    /// artifact bytes the directory addresses).
    pub fn container_len(&self) -> usize {
        self.seg.as_bytes().len()
    }

    /// Segment-level access counters (see [`SegAccessStats`]).
    pub fn access_stats(&self) -> SegAccessStats {
        self.lock().access
    }
}

impl ArtifactStore for SegStore {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        let kind = key.phase.index();
        if let Some(bytes) = inner.overlay.get(key) {
            let out = bytes.clone();
            inner.stats.hits += 1;
            inner.stats.per_phase[kind].hits += 1;
            return Some(out);
        }
        let Some(&(off, len)) = self.directory.get(key) else {
            inner.stats.misses += 1;
            inner.stats.per_phase[kind].misses += 1;
            return None;
        };
        // Verify lazily: consult the bitmap per touched segment, but
        // only commit first-touch verifications after the whole range
        // read succeeds (a failed checksum must stay unverified).
        let mut fresh = Vec::new();
        let SegInner {
            verified, access, ..
        } = &mut *inner;
        let read = self.seg.read_range_with(self.entries_base + off, len, |i| {
            access.touches += 1;
            if verified[i] || fresh.contains(&i) {
                false
            } else {
                fresh.push(i);
                access.verified += 1;
                true
            }
        });
        match read {
            Ok(bytes) => {
                for i in fresh {
                    inner.verified[i] = true;
                }
                inner.stats.hits += 1;
                inner.stats.per_phase[kind].hits += 1;
                Some(bytes)
            }
            Err(_) => {
                inner.stats.misses += 1;
                inner.stats.per_phase[kind].misses += 1;
                None
            }
        }
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        // Identical keys carry identical bytes by construction, so an
        // entry already addressed by the snapshot needs no overlay copy.
        if self.directory.contains_key(key) {
            return;
        }
        let mut inner = self.lock();
        let kind = key.phase.index();
        if inner.overlay.insert(*key, bytes.to_vec()).is_none() {
            inner.stats.inserts += 1;
            inner.stats.entries += 1;
            inner.stats.bytes += bytes.len();
            inner.stats.per_phase[kind].inserts += 1;
            inner.stats.per_phase[kind].entries += 1;
            inner.stats.per_phase[kind].bytes += bytes.len();
        }
    }

    fn stats(&self) -> StoreStats {
        self.lock().stats
    }
}

/// Virtual ring points per shard. Enough that the keyspace splits
/// near-evenly across shards (arc-length variance shrinks with the
/// point count) while routing stays a cheap binary search.
const RING_REPLICAS: usize = 128;

/// A composite [`ArtifactStore`] that partitions the [`PhaseKey`] space
/// across N inner backends by consistent hashing on the key's
/// [`ContentHash`].
///
/// Each shard owns 128 virtual points on a 128-bit hash ring
/// (derived deterministically from the shard's position, so the layout
/// is identical in every process); a key routes to the shard owning the
/// first ring point at or after the key's hash, wrapping at the top.
/// Consistent hashing — rather than `hash % N` — means growing the ring
/// by one shard remaps only the keys that land in the new shard's arcs,
/// so a warm deployment can be re-partitioned without invalidating most
/// of its cache.
///
/// Shards are arbitrary `Arc<dyn ArtifactStore>`s and may be
/// heterogeneous: a deployment can mix bounded [`MemoryStore`] LRUs with
/// persistable [`BytesStore`]s, and because each key deterministically
/// owns one shard, shards can be snapshotted and rehydrated
/// *independently* (keep the typed `Arc<BytesStore>` handles you built
/// the composite from and snapshot each — see
/// [`ShardedStore::with_bytes_shards`]).
///
/// [`ShardedStore::stats`] aggregates every shard's counters, per-phase
/// histograms included, so a service reports one coherent cache view.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Arc<dyn ArtifactStore>>,
    /// `(ring point, shard index)`, sorted by point.
    ring: Vec<(u128, usize)>,
}

impl ShardedStore {
    /// A composite over the given shards.
    ///
    /// # Panics
    ///
    /// When `shards` is empty.
    pub fn new(shards: Vec<Arc<dyn ArtifactStore>>) -> ShardedStore {
        assert!(!shards.is_empty(), "a sharded store needs >= 1 shard");
        let mut ring = Vec::with_capacity(shards.len() * RING_REPLICAS);
        for shard in 0..shards.len() {
            for replica in 0..RING_REPLICAS {
                let mut h = ContentHasher::new();
                h.update(b"MCRRING1");
                h.update(&(shard as u64).to_le_bytes());
                h.update(&(replica as u64).to_le_bytes());
                ring.push((h.finish128().0, shard));
            }
        }
        ring.sort_unstable();
        ring.dedup_by_key(|(point, _)| *point);
        ShardedStore { shards, ring }
    }

    /// A composite over `n` unbounded [`MemoryStore`] shards.
    pub fn with_memory_shards(n: usize) -> ShardedStore {
        ShardedStore::new(
            (0..n.max(1))
                .map(|_| Arc::new(MemoryStore::unbounded()) as Arc<dyn ArtifactStore>)
                .collect(),
        )
    }

    /// A composite over `n` [`BytesStore`] shards, returning the typed
    /// handles alongside so each shard can be snapshotted
    /// ([`BytesStore::to_bytes`]) and rehydrated independently.
    pub fn with_bytes_shards(n: usize) -> (ShardedStore, Vec<Arc<BytesStore>>) {
        let typed: Vec<Arc<BytesStore>> =
            (0..n.max(1)).map(|_| Arc::new(BytesStore::new())).collect();
        let store = ShardedStore::new(
            typed
                .iter()
                .map(|s| Arc::clone(s) as Arc<dyn ArtifactStore>)
                .collect(),
        );
        (store, typed)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in construction order.
    pub fn shards(&self) -> &[Arc<dyn ArtifactStore>] {
        &self.shards
    }

    /// The index of the shard owning `key` (stable across processes).
    pub fn shard_index(&self, key: &PhaseKey) -> usize {
        let at = self.ring.partition_point(|&(point, _)| point < key.hash.0) % self.ring.len();
        self.ring[at].1
    }
}

impl ArtifactStore for ShardedStore {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        self.shards[self.shard_index(key)].get(key)
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        self.shards[self.shard_index(key)].put(key, bytes);
    }

    fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats());
        }
        total
    }

    fn is_caching(&self) -> bool {
        self.shards.iter().any(|s| s.is_caching())
    }
}

#[derive(Debug, Default)]
struct ManifestState {
    /// Program roots already registered (re-registration is idempotent).
    programs: HashSet<ContentHash>,
    /// Function fingerprint → number of distinct registered programs
    /// containing that function.
    funcs: HashMap<ContentHash, u64>,
    /// Total program→function references.
    refs: u64,
}

/// An [`ArtifactStore`] decorator that records which programs share
/// which functions — the corpus-level dedup ledger of function-granular
/// caching.
///
/// Storage delegates untouched to the wrapped store; the manifest adds
/// only bookkeeping. A fleet registers each admitted program once with
/// [`CorpusManifest::record_program`]; the manifest folds the program's
/// function fingerprints into its sharing graph and reports the result
/// through [`StoreStats::manifest`], so a triage deployment can answer
/// "how much of this corpus is the same code?" — the number that
/// predicts the function-level hit rate of a recompile stream.
#[derive(Debug)]
pub struct CorpusManifest {
    inner: Arc<dyn ArtifactStore>,
    state: Mutex<ManifestState>,
}

impl CorpusManifest {
    /// Wraps `inner`, starting from an empty sharing graph.
    pub fn new(inner: Arc<dyn ArtifactStore>) -> CorpusManifest {
        CorpusManifest {
            inner,
            state: Mutex::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ManifestState> {
        self.state.lock().expect("corpus manifest poisoned")
    }

    /// Registers one program revision in the sharing graph. Idempotent
    /// per program fingerprint; returns `true` the first time this exact
    /// program is seen.
    pub fn record_program(&self, program: &mcr_lang::Program) -> bool {
        let root = program_fingerprint(program);
        let mut state = self.lock();
        if !state.programs.insert(root) {
            return false;
        }
        // A program referencing the same function twice still counts
        // each occurrence: every occurrence is a cache reference.
        for func in &program.funcs {
            *state.funcs.entry(function_fingerprint(func)).or_insert(0) += 1;
            state.refs += 1;
        }
        true
    }

    /// How many distinct registered programs contain the function with
    /// fingerprint `func` (0 when unknown).
    pub fn programs_sharing(&self, func: ContentHash) -> u64 {
        self.lock().funcs.get(&func).copied().unwrap_or(0)
    }

    /// The sharing counters alone (also folded into
    /// [`ArtifactStore::stats`] as [`StoreStats::manifest`]).
    pub fn manifest_stats(&self) -> ManifestStats {
        let state = self.lock();
        ManifestStats {
            programs: state.programs.len() as u64,
            function_refs: state.refs,
            distinct_functions: state.funcs.len() as u64,
            shared_functions: state.funcs.values().filter(|&&n| n >= 2).count() as u64,
        }
    }
}

impl ArtifactStore for CorpusManifest {
    fn get(&self, key: &PhaseKey) -> Option<Vec<u8>> {
        self.inner.get(key)
    }

    fn put(&self, key: &PhaseKey, bytes: &[u8]) {
        self.inner.put(key, bytes);
    }

    fn stats(&self) -> StoreStats {
        let mut stats = self.inner.stats();
        stats.manifest = self.manifest_stats();
        stats
    }

    fn is_caching(&self) -> bool {
        self.inner.is_caching()
    }
}

/// A stable fingerprint of a compiled program: the Merkle root
/// [`mcr_lang::program_fingerprint`] computes over the shared state and
/// the per-function fingerprints. Part of every session's key basis, so
/// artifacts of different programs can never be confused even when dumps
/// and inputs coincide — while unchanged functions keep their
/// [`function_fingerprint`] leaves across revisions, which is what the
/// function-scoped keys ([`PhaseKey::derive_for_function`]) are built
/// on.
pub fn program_fingerprint(program: &mcr_lang::Program) -> ContentHash {
    ContentHash(mcr_lang::program_fingerprint(program))
}

/// One function's stable content fingerprint
/// ([`mcr_lang::function_fingerprint`]) as a store key hash.
pub fn function_fingerprint(func: &mcr_lang::Function) -> ContentHash {
    ContentHash(mcr_lang::function_fingerprint(func))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(phase: Phase, seed: u8) -> PhaseKey {
        PhaseKey::derive(ContentHash::of(&[seed]), phase, None)
    }

    #[test]
    fn phase_key_derivation_is_stable_and_distinct() {
        let basis = ContentHash::of(b"basis");
        let a = PhaseKey::derive(basis, Phase::Index, None);
        let b = PhaseKey::derive(basis, Phase::Index, None);
        assert_eq!(a, b);
        let up = ContentHash::of(b"artifact");
        assert_ne!(a, PhaseKey::derive(basis, Phase::Align, Some(up)));
        assert_ne!(
            PhaseKey::derive(basis, Phase::Align, Some(up)),
            PhaseKey::derive(basis, Phase::Align, Some(ContentHash::of(b"other"))),
        );
        assert_ne!(
            a.hash,
            PhaseKey::derive(ContentHash::of(b"other basis"), Phase::Index, None).hash
        );
    }

    #[test]
    fn measured_frame_size_tracks_the_residency_histogram() {
        // No measurements → the fixed default.
        let store = MemoryStore::unbounded();
        assert_eq!(store.stats().mean_entry_size(), None);
        assert_eq!(measured_frame_size(&store.stats()), SEG_STORE_FRAME_SIZE);

        // Mean over the per-phase rows, clamped below at 512...
        store.put(&key(Phase::Index, 1), &[0u8; 40]);
        store.put(&key(Phase::Search, 2), &[0u8; 80]);
        let stats = store.stats();
        assert_eq!(stats.mean_entry_size(), Some(60));
        assert_eq!(stats.phase(Phase::Index).mean_entry_size(), Some(40));
        assert_eq!(stats.phase(Phase::Align).mean_entry_size(), None);
        assert_eq!(measured_frame_size(&stats), 512);

        // ...tracking the mean inside the clamp window...
        store.put(&key(Phase::Diff, 3), &[0u8; 6000]);
        let stats = store.stats();
        assert_eq!(stats.mean_entry_size(), Some(2040));
        assert_eq!(measured_frame_size(&stats), 2040);

        // ...and clamped above at 64 KiB.
        store.put(&key(Phase::Search, 4), &[0u8; 1 << 20]);
        assert_eq!(measured_frame_size(&store.stats()), 65_536);
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = MemoryStore::unbounded();
        let k = key(Phase::Index, 1);
        assert_eq!(store.get(&k), None);
        store.put(&k, b"artifact");
        assert_eq!(store.get(&k).as_deref(), Some(b"artifact".as_ref()));
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 8);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let store = MemoryStore::with_capacity(8);
        let (a, b, c) = (
            key(Phase::Index, 1),
            key(Phase::Index, 2),
            key(Phase::Index, 3),
        );
        store.put(&a, b"aaaa");
        store.put(&b, b"bbbb");
        // Touch `a` so `b` is now least recently used.
        assert!(store.get(&a).is_some());
        store.put(&c, b"cccc");
        assert!(store.get(&a).is_some(), "recently used survives");
        assert!(store.get(&b).is_none(), "LRU entry evicted");
        assert!(store.get(&c).is_some());
        let stats = store.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 8);
    }

    #[test]
    fn oversized_entry_is_retained_alone() {
        let store = MemoryStore::with_capacity(4);
        let k = key(Phase::Search, 9);
        store.put(&k, b"waytoobig");
        assert!(store.get(&k).is_some());
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn bytes_store_round_trips_through_the_wire_codec() {
        let store = BytesStore::new();
        store.put(&key(Phase::Index, 1), b"one");
        store.put(&key(Phase::Search, 2), b"two");
        let blob = store.to_bytes();
        let restored = BytesStore::from_bytes(&blob).unwrap();
        assert_eq!(
            restored.get(&key(Phase::Index, 1)).as_deref(),
            Some(b"one".as_ref())
        );
        assert_eq!(
            restored.get(&key(Phase::Search, 2)).as_deref(),
            Some(b"two".as_ref())
        );
        assert_eq!(restored.stats().entries, 2);
        // Deterministic snapshot.
        assert_eq!(blob, restored.to_bytes());
        // Truncations never panic.
        for cut in 0..blob.len() {
            assert!(BytesStore::from_bytes(&blob[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn null_store_forgets_everything() {
        let store = NullStore;
        let k = key(Phase::Rank, 0);
        store.put(&k, b"bytes");
        assert_eq!(store.get(&k), None);
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn per_phase_histograms_follow_the_global_counters() {
        let store = MemoryStore::with_capacity(16);
        let (idx, srch) = (key(Phase::Index, 1), key(Phase::Search, 2));
        store.put(&idx, b"12345678");
        store.put(&srch, b"abcdefgh");
        assert!(store.get(&idx).is_some());
        assert!(store.get(&key(Phase::Rank, 3)).is_none());
        // A third insert overflows the 16-byte capacity; the LRU victim
        // is the search entry (index was touched last).
        store.put(&key(Phase::Diff, 4), b"qrstuvwx");
        let stats = store.stats();
        assert_eq!(stats.phase(Phase::Index).hits, 1);
        assert_eq!(stats.phase(Phase::Index).inserts, 1);
        assert_eq!(stats.phase(Phase::Rank).misses, 1);
        assert_eq!(stats.phase(Phase::Search).evictions, 1);
        assert_eq!(stats.phase(Phase::Search).entries, 0);
        assert_eq!(stats.phase(Phase::Search).bytes, 0);
        assert_eq!(stats.phase(Phase::Diff).entries, 1);
        // The histogram rows sum back to the global counters.
        let (mut h, mut m, mut i, mut e, mut n, mut b) = (0, 0, 0, 0, 0, 0);
        for row in &stats.per_phase {
            h += row.hits;
            m += row.misses;
            i += row.inserts;
            e += row.evictions;
            n += row.entries;
            b += row.bytes;
        }
        assert_eq!(
            (h, m, i, e, n, b),
            (
                stats.hits,
                stats.misses,
                stats.inserts,
                stats.evictions,
                stats.entries,
                stats.bytes
            )
        );
    }

    #[test]
    fn sharded_store_routes_deterministically_and_round_trips() {
        let sharded = ShardedStore::with_memory_shards(4);
        assert_eq!(sharded.shard_count(), 4);
        let keys: Vec<PhaseKey> = (0..64u8)
            .map(|s| key(PHASES[(s % 5) as usize], s))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(sharded.get(k), None);
            sharded.put(k, &[i as u8; 8]);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(sharded.get(k).as_deref(), Some([i as u8; 8].as_ref()));
            // Routing is a pure function of the key.
            assert_eq!(sharded.shard_index(k), sharded.shard_index(k));
        }
        // The keyspace actually spreads: no shard holds everything.
        let per_shard: Vec<usize> = sharded.shards().iter().map(|s| s.stats().entries).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), keys.len());
        assert!(per_shard.iter().all(|&n| n < keys.len()), "{per_shard:?}");
        // Aggregated stats cover every shard.
        let stats = sharded.stats();
        assert_eq!(stats.entries, keys.len());
        assert_eq!(stats.inserts, keys.len() as u64);
        assert_eq!(stats.hits, keys.len() as u64);
        assert_eq!(stats.misses, keys.len() as u64);
        assert!(sharded.is_caching());
    }

    #[test]
    fn sharded_routing_is_stable_across_instances_and_mostly_under_growth() {
        let a = ShardedStore::with_memory_shards(4);
        let b = ShardedStore::with_memory_shards(4);
        let grown = ShardedStore::with_memory_shards(5);
        let keys: Vec<PhaseKey> = (0..200u8).map(|s| key(Phase::Index, s)).collect();
        let mut moved = 0usize;
        for k in &keys {
            assert_eq!(a.shard_index(k), b.shard_index(k), "layout is canonical");
            if a.shard_index(k) != grown.shard_index(k) {
                moved += 1;
            }
        }
        // Consistent hashing: growing 4 -> 5 shards remaps roughly 1/5
        // of the keys, not all of them (modulo hashing would remap ~4/5).
        assert!(moved > 0, "a new shard must take over some keys");
        assert!(moved < keys.len() / 2, "only a fraction moves: {moved}");
    }

    #[test]
    fn sharded_bytes_shards_snapshot_and_rehydrate_independently() {
        let (sharded, typed) = ShardedStore::with_bytes_shards(4);
        let keys: Vec<PhaseKey> = (0..32u8)
            .map(|s| key(PHASES[(s % 5) as usize], s))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            sharded.put(k, &[i as u8; 4]);
        }
        // Snapshot each shard independently and rebuild the composite
        // from the restored shards (a second triage worker's startup).
        let restored = ShardedStore::new(
            typed
                .iter()
                .map(|s| {
                    Arc::new(BytesStore::from_bytes(&s.to_bytes()).unwrap())
                        as Arc<dyn ArtifactStore>
                })
                .collect(),
        );
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(restored.get(k).as_deref(), Some([i as u8; 4].as_ref()));
        }
        assert_eq!(restored.stats().entries, keys.len());
    }

    use crate::observe::PHASES;

    #[test]
    fn program_fingerprint_distinguishes_programs() {
        let a = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        let a2 = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        let b = mcr_lang::compile("global x: int; fn main() { x = 2; }").unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a2));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn function_scoped_keys_are_shared_across_programs() {
        let a = mcr_lang::compile("fn helper() { } fn main() { }").unwrap();
        let b = mcr_lang::compile("global g: int; fn helper() { } fn main() { g = 1; }").unwrap();
        // Different programs, identical `helper` → identical unit key.
        let ka = PhaseKey::derive_for_function(function_fingerprint(&a.funcs[0]), Phase::Compile);
        let kb = PhaseKey::derive_for_function(function_fingerprint(&b.funcs[0]), Phase::Compile);
        assert_eq!(ka, kb);
        // `main` differs → distinct keys.
        assert_ne!(
            PhaseKey::derive_for_function(function_fingerprint(&a.funcs[1]), Phase::Compile),
            PhaseKey::derive_for_function(function_fingerprint(&b.funcs[1]), Phase::Compile),
        );
        // Phase kind separates compile units from analysis units, and the
        // function-scoped domain never collides with session-level keys.
        assert_ne!(
            ka,
            PhaseKey::derive_for_function(function_fingerprint(&a.funcs[0]), Phase::Index)
        );
        assert_ne!(
            ka.hash,
            PhaseKey::derive(function_fingerprint(&a.funcs[0]), Phase::Compile, None).hash
        );
    }

    #[test]
    fn small_entry_floor_protects_cheap_artifacts() {
        // 3 small (4 B) "index" entries + large "diff" entries under an
        // LRU that must shed bytes: the victims are the large entries,
        // regardless of recency.
        let store = MemoryStore::with_capacity_and_floor(64, 8);
        let small: Vec<PhaseKey> = (0..3).map(|s| key(Phase::Index, s)).collect();
        for k in &small {
            store.put(k, b"tiny");
        }
        store.put(&key(Phase::Diff, 10), &[0u8; 40]);
        // Small entries are now LRU; the second large insert overflows.
        store.put(&key(Phase::Diff, 11), &[1u8; 40]);
        for k in &small {
            assert!(store.get(k).is_some(), "protected small entry survives");
        }
        let stats = store.stats();
        assert_eq!(stats.phase(Phase::Diff).evictions, 1);
        assert_eq!(stats.phase(Phase::Index).evictions, 0);
        assert!(stats.bytes <= 64);
    }

    #[test]
    fn small_entry_floor_falls_back_to_plain_lru() {
        // All entries at/under the floor: eviction still terminates and
        // behaves like plain LRU (the capacity bound stays honest).
        let store = MemoryStore::with_capacity_and_floor(8, 16);
        let (a, b, c) = (
            key(Phase::Index, 1),
            key(Phase::Index, 2),
            key(Phase::Index, 3),
        );
        store.put(&a, b"aaaa");
        store.put(&b, b"bbbb");
        assert!(store.get(&a).is_some());
        store.put(&c, b"cccc");
        assert!(store.get(&a).is_some(), "recently used survives");
        assert!(store.get(&b).is_none(), "LRU entry evicted");
        assert!(store.stats().bytes <= 8);
    }

    #[test]
    fn entry_walks_agree_with_materialized_entries() {
        let store = MemoryStore::unbounded();
        for s in 0..12u8 {
            store.put(
                &key(PHASES[(s % 5) as usize], s),
                &vec![s; (s as usize + 1) * 3],
            );
        }
        let materialized = store.entries();
        let mut walked = Vec::new();
        store.for_each_entry(|k, b| walked.push((*k, b.to_vec())));
        assert_eq!(walked, materialized);
        assert_eq!(
            store.entry_sizes(),
            materialized
                .iter()
                .map(|(k, b)| (*k, b.len()))
                .collect::<Vec<_>>()
        );
    }

    fn seeded_store(n: u8, entry_bytes: usize) -> MemoryStore {
        let store = MemoryStore::unbounded();
        for s in 0..n {
            store.put(
                &key(PHASES[(s % 5) as usize], s),
                &vec![s.wrapping_mul(17); entry_bytes],
            );
        }
        store
    }

    #[test]
    fn seg_store_rehydrates_entries_by_range() {
        let source = seeded_store(16, 600);
        let blob = SegStore::snapshot(&source, 256);
        let seg = SegStore::from_bytes(blob.clone()).unwrap();
        assert_eq!(seg.snapshot_entries(), 16);
        assert_eq!(seg.stats().entries, 16);
        assert_eq!(seg.stats().bytes, 16 * 600);
        // Every entry rehydrates byte-identical to the source.
        source.for_each_entry(|k, b| {
            assert_eq!(seg.get(k).as_deref(), Some(b), "{k}");
        });
        // Determinism: the snapshot is canonical.
        assert_eq!(SegStore::snapshot(&source, 256), blob);
        // Rehydrating everything verified each payload segment once;
        // a second full pass is all segment hits.
        let first = seg.access_stats();
        assert!(first.touches >= first.verified);
        source.for_each_entry(|k, _| {
            seg.get(k);
        });
        let second = seg.access_stats();
        assert_eq!(second.verified, first.verified, "no re-verification");
        assert!(second.hit_rate() > first.hit_rate());
        assert_eq!(seg.stats().hits, 32);
    }

    #[test]
    fn seg_store_verifies_lazily_and_fails_closed() {
        let source = seeded_store(32, 500);
        let blob = SegStore::snapshot(&source, 256);
        let seg = SegStore::from_bytes(blob.clone()).unwrap();
        // One entry read touches a sliver of the container.
        let (k, _) = source.entries().pop().unwrap();
        assert!(seg.get(&k).is_some());
        let touched = seg.access_stats().verified as usize;
        assert!(
            touched * 256 < blob.len() / 4,
            "one entry must not verify most of the container ({touched} segments)"
        );
        // Flip a byte deep in the entries region: opening still works
        // (lazy), the corrupt entry reads as a miss, others still hit.
        let mut corrupt = blob.clone();
        let at = blob.len() * 3 / 4;
        corrupt[at] ^= 0x20;
        match SegStore::from_bytes(corrupt) {
            // The flip may land on framing metadata, which fails parse.
            Err(_) => {}
            Ok(store) => {
                let mut hits = 0;
                let mut misses = 0;
                source.for_each_entry(|k, b| match store.get(k) {
                    Some(got) => {
                        assert_eq!(got, b, "a hit must be byte-identical");
                        hits += 1;
                    }
                    None => misses += 1,
                });
                assert!(misses >= 1, "corrupt segment must surface as a miss");
                assert!(hits >= 1, "untouched segments must still hit");
            }
        }
        // Truncations of the container never open.
        for cut in (0..blob.len()).step_by(37) {
            assert!(
                SegStore::from_bytes(blob[..cut].to_vec()).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn seg_store_overlay_absorbs_new_entries() {
        let source = seeded_store(4, 100);
        let seg = SegStore::from_bytes(SegStore::snapshot(&source, 128)).unwrap();
        let fresh = key(Phase::Search, 99);
        assert_eq!(seg.get(&fresh), None);
        seg.put(&fresh, b"new artifact");
        assert_eq!(seg.get(&fresh).as_deref(), Some(b"new artifact".as_ref()));
        // Re-putting a snapshot-resident key is a no-op, not a copy.
        let (resident, bytes) = source.entries().remove(0);
        seg.put(&resident, &bytes);
        let stats = seg.stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.inserts, 1);
        assert!(seg.is_caching());
    }

    #[test]
    fn bytes_store_to_segmented_round_trips() {
        let store = BytesStore::new();
        store.put(&key(Phase::Index, 1), b"one");
        store.put(&key(Phase::Diff, 2), &[7u8; 2000]);
        let seg = SegStore::from_bytes(store.to_segmented(SEG_STORE_FRAME_SIZE)).unwrap();
        assert_eq!(
            seg.get(&key(Phase::Index, 1)).as_deref(),
            Some(b"one".as_ref())
        );
        assert_eq!(
            seg.get(&key(Phase::Diff, 2)).as_deref(),
            Some([7u8; 2000].as_ref())
        );
        assert_eq!(seg.stats().entries, 2);
    }

    #[test]
    fn corpus_manifest_records_cross_program_sharing() {
        let base = "global x: int; fn helper() { x = 1; } fn main() { spawn helper(); }";
        let p1 = mcr_lang::compile(base).unwrap();
        let p2 = mcr_lang::compile(&base.replace("x = 1;", "x = 2;")).unwrap();
        let store = CorpusManifest::new(Arc::new(MemoryStore::unbounded()));
        assert!(store.record_program(&p1));
        assert!(!store.record_program(&p1), "re-registration is idempotent");
        assert!(store.record_program(&p2));
        let m = store.stats().manifest;
        assert_eq!(m.programs, 2);
        assert_eq!(m.function_refs, 4);
        // `main` is shared; the two `helper` revisions are distinct.
        assert_eq!(m.distinct_functions, 3);
        assert_eq!(m.shared_functions, 1);
        assert!((m.dedup_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(
            store.programs_sharing(function_fingerprint(&p1.funcs[1])),
            2
        );
        assert_eq!(
            store.programs_sharing(function_fingerprint(&p1.funcs[0])),
            1
        );
        // Storage passes through to the wrapped store.
        let k = key(Phase::Compile, 7);
        store.put(&k, b"unit");
        assert_eq!(store.get(&k).as_deref(), Some(b"unit".as_ref()));
        assert!(store.is_caching());
        assert_eq!(store.stats().entries, 1);
    }
}
