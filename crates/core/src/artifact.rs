//! Serializable phase artifacts of the reproduction session.
//!
//! Each phase of a [`ReproSession`](crate::ReproSession) produces an
//! owned, inspectable artifact struct — the reverse-engineered execution
//! index, the alignment plus passing-run log, the dump delta, the ranked
//! CSV accesses, and the search result. Every artifact is
//! encodable/decodable on the [`mcr_dump::wire`] format, so the
//! expensive intermediates are first-class
//! values that can be stored, shipped between processes, and resumed —
//! not locals inside one opaque pipeline call.
//!
//! Framing: every artifact byte string starts with the 4-byte magic
//! `MCRA`, a format version, and a kind tag, so artifacts of different
//! phases cannot be confused for one another. Decoding rejects trailing
//! bytes, unknown tags, and truncation with [`DecodeError`].

use mcr_analysis::PredKey;
use mcr_dump::wire::{Reader, Writer};
use mcr_dump::{DecodeError, PathRoot, RefPath};
use mcr_index::{AlignSignal, Alignment, ExecutionIndex, IndexEntry};
use mcr_lang::{CondGroupId, FuncId, GlobalId, LocalId, StmtId};
use mcr_search::{
    AnnotatedCandidate, CandidateKind, CoarseLoc, PassingRunInfo, PreemptionPoint, SearchResult,
    SharedAccess,
};
use mcr_slice::{RankedAccess, Trace, TraceEvent};
use mcr_vm::{MemLoc, ObjId, ThreadId};
use std::collections::HashSet;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"MCRA";
const VERSION: u8 = 1;

/// The artifact kind tags of the `MCRA` framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Index = 0,
    Alignment = 1,
    Delta = 2,
    Ranked = 3,
    Search = 4,
    Plan = 5,
    Analysis = 6,
    Race = 7,
}

fn frame(kind: Kind, body: impl FnOnce(&mut Writer)) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(MAGIC);
    w.u8(VERSION);
    w.u8(kind as u8);
    body(&mut w);
    w.into_bytes()
}

fn unframe<'a>(bytes: &'a [u8], kind: Kind) -> Result<Reader<'a>, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC)?;
    let version = r.u8()?;
    if version != VERSION {
        return r.err(format!("unsupported artifact version {version}"));
    }
    let tag = r.u8()?;
    if tag != kind as u8 {
        return r.err(format!("artifact kind {tag} where {} expected", kind as u8));
    }
    Ok(r)
}

/// Phase 1 output: the reverse-engineered failure execution index.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureIndexArtifact {
    /// The failure index (`None` under
    /// [`AlignMode::InstructionCount`](crate::AlignMode::InstructionCount),
    /// which skips reverse engineering).
    pub index: Option<ExecutionIndex>,
    /// Wall-clock time the phase took.
    pub elapsed: Duration,
}

/// Phase 2 output: the aligned point plus the passing run's sync/access
/// log.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentArtifact {
    /// The alignment found.
    pub alignment: Alignment,
    /// True when the deterministic passing run itself crashed with the
    /// target failure (not a Heisenbug — no search needed).
    pub deterministic_repro: bool,
    /// Preemption candidates and shared accesses of the passing run.
    pub passing_run: PassingRunInfo,
    /// Wall-clock time the phase took.
    pub elapsed: Duration,
}

/// Phase 3 output: the dump comparison — critical shared variables plus
/// the dependence trace captured at the aligned point.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpDeltaArtifact {
    /// Encoded size of the failure dump in bytes.
    pub failure_dump_bytes: usize,
    /// Encoded size of the aligned dump in bytes.
    pub aligned_dump_bytes: usize,
    /// Variables reachable from the failing thread in the failure dump.
    pub vars: usize,
    /// Variables with differing values across the two dumps.
    pub diffs: usize,
    /// Shared variables compared.
    pub shared: usize,
    /// Critical shared variables (reference paths).
    pub csv_paths: Vec<RefPath>,
    /// CSV locations resolved in the passing run.
    pub csv_locs: Vec<MemLoc>,
    /// The dependence trace of the replay (feeds the rank phase).
    pub trace: Trace,
    /// Wall-clock time of the replay to the aligned point.
    pub replay_elapsed: Duration,
    /// Wall-clock time encoding, decoding, and traversing both dumps.
    pub parse_elapsed: Duration,
    /// Wall-clock time comparing the two variable maps.
    pub diff_elapsed: Duration,
}

/// Phase 4 output: the prioritized CSV accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAccessesArtifact {
    /// Prioritized accesses to the critical shared variables.
    pub ranked: Vec<RankedAccess>,
    /// Wall-clock time the phase took.
    pub elapsed: Duration,
}

/// Phase 5 output: the schedule search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchArtifact {
    /// The search result (possibly partial, when cancelled or cut off).
    pub result: SearchResult,
    /// Wall-clock time the phase took.
    pub elapsed: Duration,
}

/// Compile pre-phase output: the program's serialized direct-threaded
/// dispatch plan (`mcr-vm`'s `DispatchPlan` wire bytes). Keyed by
/// program fingerprint alone, so near-duplicate fleet jobs rehydrate
/// one shared plan instead of recompiling.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlanArtifact {
    /// The plan's own deterministic wire encoding
    /// (`DispatchPlan::to_bytes`); kept opaque here so the artifact
    /// layer does not depend on the plan's internal layout.
    pub plan_bytes: Vec<u8>,
    /// Wall-clock time the compile took.
    pub elapsed: Duration,
}

/// Per-function static-analysis cache unit: the expensive parts of one
/// `mcr_analysis::FuncAnalysis` (post-dominators, control dependences,
/// cluster membership), keyed by the function's content fingerprint.
/// The cheap CFG is rebuilt locally on rehydration
/// (`FuncAnalysis::from_parts`), so this artifact stays small — which is
/// exactly why the store's small-entry protection floor matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncAnalysisArtifact {
    /// Immediate post-dominator per CFG node (`stmt_count + 1` entries,
    /// virtual exit included; `usize::MAX` marks unreachable nodes).
    pub ipdom: Vec<usize>,
    /// Raw control dependences per statement.
    pub cds: Vec<Vec<(StmtId, bool)>>,
    /// Short-circuit cluster membership per statement.
    pub member_of: Vec<Option<CondGroupId>>,
    /// Wall-clock time the analysis took.
    pub elapsed: Duration,
}

/// Per-function static race/lockset cache unit: one function's
/// [`mcr_analysis::FuncRaceSummary`], keyed by the function's content
/// fingerprint under [`Phase::StaticRace`](crate::Phase). Summaries are
/// content-local (no whole-program facts), so Merkle-cached units
/// compose bottom-up: a session rehydrates the unchanged functions'
/// summaries and runs only the cheap whole-program composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncRaceArtifact {
    /// The function's race summary.
    pub summary: mcr_analysis::FuncRaceSummary,
    /// Wall-clock time the summary extraction took.
    pub elapsed: Duration,
}

// ---------------------------------------------------------------------
// Shared component codecs. (Program counters go through the public
// `wire` pc codec — `Writer::pc` / `Reader::pc` — shared with the dump
// format; only artifact-specific composites live here.)

fn write_memloc(w: &mut Writer, loc: MemLoc) {
    match loc {
        MemLoc::Global(g) => {
            w.u8(0);
            w.uvarint(g.0 as u64);
        }
        MemLoc::GlobalElem(g, i) => {
            w.u8(1);
            w.uvarint(g.0 as u64);
            w.uvarint(i as u64);
        }
        MemLoc::Heap(o, i) => {
            w.u8(2);
            w.uvarint(o.0 as u64);
            w.uvarint(i as u64);
        }
        MemLoc::Local { tid, frame, local } => {
            w.u8(3);
            w.uvarint(tid.0 as u64);
            w.uvarint(frame);
            w.uvarint(local.0 as u64);
        }
    }
}

fn read_memloc(r: &mut Reader<'_>) -> Result<MemLoc, DecodeError> {
    Ok(match r.u8()? {
        0 => MemLoc::Global(GlobalId(r.uvarint()? as u32)),
        1 => MemLoc::GlobalElem(GlobalId(r.uvarint()? as u32), r.uvarint()? as u32),
        2 => MemLoc::Heap(ObjId(r.uvarint()? as u32), r.uvarint()? as u32),
        3 => MemLoc::Local {
            tid: ThreadId(r.uvarint()? as u32),
            frame: r.uvarint()?,
            local: LocalId(r.uvarint()? as u32),
        },
        t => return r.err(format!("bad memloc tag {t}")),
    })
}

fn write_coarse(w: &mut Writer, loc: CoarseLoc) {
    match loc {
        CoarseLoc::Global(g) => {
            w.u8(0);
            w.uvarint(g.0 as u64);
        }
        CoarseLoc::Heap(o) => {
            w.u8(1);
            w.uvarint(o.0 as u64);
        }
        CoarseLoc::Private => w.u8(2),
    }
}

fn read_coarse(r: &mut Reader<'_>) -> Result<CoarseLoc, DecodeError> {
    Ok(match r.u8()? {
        0 => CoarseLoc::Global(GlobalId(r.uvarint()? as u32)),
        1 => CoarseLoc::Heap(ObjId(r.uvarint()? as u32)),
        2 => CoarseLoc::Private,
        t => return r.err(format!("bad coarse-loc tag {t}")),
    })
}

fn write_refpath(w: &mut Writer, path: &RefPath) {
    match path.root {
        PathRoot::Global(g) => {
            w.u8(0);
            w.uvarint(g.0 as u64);
        }
        PathRoot::GlobalElem(g, i) => {
            w.u8(1);
            w.uvarint(g.0 as u64);
            w.uvarint(i as u64);
        }
        PathRoot::FocusLocal(l) => {
            w.u8(2);
            w.uvarint(l.0 as u64);
        }
        PathRoot::Register => w.u8(3),
    }
    w.uvarint(path.steps.len() as u64);
    for s in &path.steps {
        w.uvarint(*s as u64);
    }
}

fn read_refpath(r: &mut Reader<'_>) -> Result<RefPath, DecodeError> {
    let root = match r.u8()? {
        0 => PathRoot::Global(GlobalId(r.uvarint()? as u32)),
        1 => PathRoot::GlobalElem(GlobalId(r.uvarint()? as u32), r.uvarint()? as u32),
        2 => PathRoot::FocusLocal(LocalId(r.uvarint()? as u32)),
        3 => PathRoot::Register,
        t => return r.err(format!("bad path root tag {t}")),
    };
    let n = r.len("refpath steps")?;
    let mut steps = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        steps.push(r.uvarint()? as u32);
    }
    Ok(RefPath { root, steps })
}

fn write_index_entry(w: &mut Writer, entry: &IndexEntry) {
    match entry {
        IndexEntry::Func(f) => {
            w.u8(0);
            w.uvarint(f.0 as u64);
        }
        IndexEntry::Branch { func, key, outcome } => {
            w.u8(1);
            w.uvarint(func.0 as u64);
            match key {
                PredKey::Stmt(s) => {
                    w.u8(0);
                    w.uvarint(s.0 as u64);
                }
                PredKey::Cluster(g) => {
                    w.u8(1);
                    w.uvarint(g.0 as u64);
                }
            }
            w.bool(*outcome);
        }
        IndexEntry::Stmt(pc) => {
            w.u8(2);
            w.pc(*pc);
        }
    }
}

fn read_index_entry(r: &mut Reader<'_>) -> Result<IndexEntry, DecodeError> {
    Ok(match r.u8()? {
        0 => IndexEntry::Func(FuncId(r.uvarint()? as u32)),
        1 => {
            let func = FuncId(r.uvarint()? as u32);
            let key = match r.u8()? {
                0 => PredKey::Stmt(StmtId(r.uvarint()? as u32)),
                1 => PredKey::Cluster(CondGroupId(r.uvarint()? as u32)),
                t => return r.err(format!("bad pred key tag {t}")),
            };
            let outcome = r.bool()?;
            IndexEntry::Branch { func, key, outcome }
        }
        2 => IndexEntry::Stmt(r.pc()?),
        t => return r.err(format!("bad index entry tag {t}")),
    })
}

fn candidate_kind_tag(kind: CandidateKind) -> u8 {
    match kind {
        CandidateKind::ThreadStart => 0,
        CandidateKind::BeforeAcquire => 1,
        CandidateKind::AfterRelease => 2,
        CandidateKind::AfterSpawn => 3,
        CandidateKind::BeforeJoin => 4,
        CandidateKind::BeforeFlush => 5,
    }
}

fn candidate_kind_from_tag(t: u8) -> Option<CandidateKind> {
    Some(match t {
        0 => CandidateKind::ThreadStart,
        1 => CandidateKind::BeforeAcquire,
        2 => CandidateKind::AfterRelease,
        3 => CandidateKind::AfterSpawn,
        4 => CandidateKind::BeforeJoin,
        5 => CandidateKind::BeforeFlush,
        _ => return None,
    })
}

fn write_point(w: &mut Writer, p: &PreemptionPoint) {
    w.uvarint(p.tid.0 as u64);
    w.uvarint(p.sync_seq as u64);
    w.u8(candidate_kind_tag(p.kind));
    w.uvarint(p.step);
    w.opt_pc(p.pc);
}

fn read_point(r: &mut Reader<'_>) -> Result<PreemptionPoint, DecodeError> {
    let tid = ThreadId(r.uvarint()? as u32);
    let sync_seq = r.uvarint()? as u32;
    let tag = r.u8()?;
    let Some(kind) = candidate_kind_from_tag(tag) else {
        return r.err(format!("bad candidate kind tag {tag}"));
    };
    let step = r.uvarint()?;
    let pc = r.opt_pc()?;
    Ok(PreemptionPoint {
        tid,
        sync_seq,
        kind,
        step,
        pc,
    })
}

fn write_ranked(w: &mut Writer, a: &RankedAccess) {
    w.uvarint(a.serial);
    w.uvarint(a.step);
    w.uvarint(a.tid.0 as u64);
    w.pc(a.pc);
    write_memloc(w, a.loc);
    w.bool(a.is_write);
    w.uvarint(a.priority as u64);
}

fn read_ranked(r: &mut Reader<'_>) -> Result<RankedAccess, DecodeError> {
    Ok(RankedAccess {
        serial: r.uvarint()?,
        step: r.uvarint()?,
        tid: ThreadId(r.uvarint()? as u32),
        pc: r.pc()?,
        loc: read_memloc(r)?,
        is_write: r.bool()?,
        priority: r.uvarint()? as u32,
    })
}

fn write_candidate(w: &mut Writer, c: &AnnotatedCandidate) {
    write_point(w, &c.point);
    w.uvarint(c.accesses.len() as u64);
    for a in &c.accesses {
        write_ranked(w, a);
    }
    w.uvarint(c.best_priority as u64);
    // HashSet → sorted for a canonical byte layout.
    let mut locs: Vec<CoarseLoc> = c.access_locs.iter().copied().collect();
    locs.sort_unstable();
    w.uvarint(locs.len() as u64);
    for l in locs {
        write_coarse(w, l);
    }
}

fn read_candidate(r: &mut Reader<'_>) -> Result<AnnotatedCandidate, DecodeError> {
    let point = read_point(r)?;
    let n = r.len("candidate accesses")?;
    let mut accesses = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        accesses.push(read_ranked(r)?);
    }
    let best_priority = r.uvarint()? as u32;
    let n = r.len("candidate locs")?;
    let mut access_locs = HashSet::with_capacity(n.min(65536));
    for _ in 0..n {
        access_locs.insert(read_coarse(r)?);
    }
    Ok(AnnotatedCandidate {
        point,
        accesses,
        best_priority,
        access_locs,
    })
}

fn write_search_result(w: &mut Writer, s: &SearchResult) {
    w.bool(s.reproduced);
    w.uvarint(s.tries);
    w.uvarint(s.combinations_tested);
    match &s.winning {
        None => w.bool(false),
        Some(set) => {
            w.bool(true);
            w.uvarint(set.len() as u64);
            for c in set {
                write_candidate(w, c);
            }
        }
    }
    w.duration(s.wall_time);
    w.bool(s.cut_off);
    w.bool(s.cancelled);
}

fn read_search_result(r: &mut Reader<'_>) -> Result<SearchResult, DecodeError> {
    let reproduced = r.bool()?;
    let tries = r.uvarint()?;
    let combinations_tested = r.uvarint()?;
    let winning = if r.bool()? {
        let n = r.len("winning set")?;
        let mut set = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            set.push(read_candidate(r)?);
        }
        Some(set)
    } else {
        None
    };
    Ok(SearchResult {
        reproduced,
        tries,
        combinations_tested,
        winning,
        wall_time: r.duration()?,
        cut_off: r.bool()?,
        cancelled: r.bool()?,
    })
}

// The trace-event byte layout is canonical in `mcr_slice` (the
// segment-spilling sink seals frames on it); the diff artifact reuses it
// verbatim so spilled frames and cached artifacts stay bit-identical.
fn write_trace_event(w: &mut Writer, e: &TraceEvent) {
    mcr_slice::write_trace_event(w, e);
}

fn read_trace_event(r: &mut Reader<'_>) -> Result<TraceEvent, DecodeError> {
    mcr_slice::read_trace_event(r)
}

// ---------------------------------------------------------------------
// Artifact codecs.

impl FailureIndexArtifact {
    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Index, |w| {
            match &self.index {
                None => w.bool(false),
                Some(idx) => {
                    w.bool(true);
                    w.uvarint(idx.entries.len() as u64);
                    for e in &idx.entries {
                        write_index_entry(w, e);
                    }
                }
            }
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Index)?;
        let index = if r.bool()? {
            let n = r.len("index entries")?;
            let mut entries = Vec::with_capacity(n.min(65536));
            for _ in 0..n {
                entries.push(read_index_entry(&mut r)?);
            }
            Some(ExecutionIndex::new(entries))
        } else {
            None
        };
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(FailureIndexArtifact { index, elapsed })
    }
}

impl AlignmentArtifact {
    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Alignment, |w| {
            w.u8(match self.alignment.signal {
                AlignSignal::Exact => 0,
                AlignSignal::Closest => 1,
            });
            w.uvarint(self.alignment.step);
            w.uvarint(self.alignment.remaining as u64);
            w.bool(self.deterministic_repro);
            let info = &self.passing_run;
            w.uvarint(info.candidates.len() as u64);
            for c in &info.candidates {
                write_point(w, c);
            }
            w.uvarint(info.shared_accesses.len() as u64);
            for a in &info.shared_accesses {
                w.uvarint(a.step);
                w.uvarint(a.tid.0 as u64);
                w.pc(a.pc);
                write_memloc(w, a.loc);
                w.bool(a.is_write);
            }
            w.uvarint(info.total_steps);
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Alignment)?;
        let signal = match r.u8()? {
            0 => AlignSignal::Exact,
            1 => AlignSignal::Closest,
            t => return r.err(format!("bad align signal tag {t}")),
        };
        let alignment = Alignment {
            signal,
            step: r.uvarint()?,
            remaining: r.uvarint()? as usize,
        };
        let deterministic_repro = r.bool()?;
        let n = r.len("candidates")?;
        let mut candidates = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            candidates.push(read_point(&mut r)?);
        }
        let n = r.len("shared accesses")?;
        let mut shared_accesses = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            shared_accesses.push(SharedAccess {
                step: r.uvarint()?,
                tid: ThreadId(r.uvarint()? as u32),
                pc: r.pc()?,
                loc: read_memloc(&mut r)?,
                is_write: r.bool()?,
            });
        }
        let total_steps = r.uvarint()?;
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(AlignmentArtifact {
            alignment,
            deterministic_repro,
            passing_run: PassingRunInfo {
                candidates,
                shared_accesses,
                total_steps,
            },
            elapsed,
        })
    }
}

impl DumpDeltaArtifact {
    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Delta, |w| {
            w.uvarint(self.failure_dump_bytes as u64);
            w.uvarint(self.aligned_dump_bytes as u64);
            w.uvarint(self.vars as u64);
            w.uvarint(self.diffs as u64);
            w.uvarint(self.shared as u64);
            w.uvarint(self.csv_paths.len() as u64);
            for p in &self.csv_paths {
                write_refpath(w, p);
            }
            w.uvarint(self.csv_locs.len() as u64);
            for &l in &self.csv_locs {
                write_memloc(w, l);
            }
            w.uvarint(self.trace.events.len() as u64);
            for e in &self.trace.events {
                write_trace_event(w, e);
            }
            w.duration(self.replay_elapsed);
            w.duration(self.parse_elapsed);
            w.duration(self.diff_elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Delta)?;
        let failure_dump_bytes = r.uvarint()? as usize;
        let aligned_dump_bytes = r.uvarint()? as usize;
        let vars = r.uvarint()? as usize;
        let diffs = r.uvarint()? as usize;
        let shared = r.uvarint()? as usize;
        let n = r.len("csv paths")?;
        let mut csv_paths = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            csv_paths.push(read_refpath(&mut r)?);
        }
        let n = r.len("csv locs")?;
        let mut csv_locs = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            csv_locs.push(read_memloc(&mut r)?);
        }
        let n = r.len("trace events")?;
        let mut events = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            events.push(read_trace_event(&mut r)?);
        }
        let replay_elapsed = r.duration()?;
        let parse_elapsed = r.duration()?;
        let diff_elapsed = r.duration()?;
        r.finish()?;
        Ok(DumpDeltaArtifact {
            failure_dump_bytes,
            aligned_dump_bytes,
            vars,
            diffs,
            shared,
            csv_paths,
            csv_locs,
            trace: Trace { events },
            replay_elapsed,
            parse_elapsed,
            diff_elapsed,
        })
    }
}

impl RankedAccessesArtifact {
    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Ranked, |w| {
            w.uvarint(self.ranked.len() as u64);
            for a in &self.ranked {
                write_ranked(w, a);
            }
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Ranked)?;
        let n = r.len("ranked accesses")?;
        let mut ranked = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            ranked.push(read_ranked(&mut r)?);
        }
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(RankedAccessesArtifact { ranked, elapsed })
    }
}

impl SearchArtifact {
    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Search, |w| {
            write_search_result(w, &self.result);
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Search)?;
        let result = read_search_result(&mut r)?;
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(SearchArtifact { result, elapsed })
    }
}

impl CompiledPlanArtifact {
    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Plan, |w| {
            w.bytes(&self.plan_bytes);
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Plan)?;
        let plan_bytes = r.bytes()?.to_vec();
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(CompiledPlanArtifact {
            plan_bytes,
            elapsed,
        })
    }
}

impl FuncAnalysisArtifact {
    /// Captures the cacheable parts of one function's analysis.
    pub fn of(fa: &mcr_analysis::FuncAnalysis, elapsed: Duration) -> FuncAnalysisArtifact {
        let n = fa.cfg().stmt_count();
        FuncAnalysisArtifact {
            ipdom: fa.ipdoms().to_vec(),
            cds: (0..n)
                .map(|s| fa.raw_cds(StmtId(s as u32)).to_vec())
                .collect(),
            member_of: fa.cluster_memberships().to_vec(),
            elapsed,
        }
    }

    /// Stitches the cached parts back onto `func`'s freshly built CFG.
    /// `None` when the parts do not fit the function (a content-hash
    /// collision or corrupted cache) — callers re-analyze.
    pub fn rehydrate(&self, func: &mcr_lang::Function) -> Option<mcr_analysis::FuncAnalysis> {
        mcr_analysis::FuncAnalysis::from_parts(
            func,
            self.ipdom.clone(),
            self.cds.clone(),
            self.member_of.clone(),
        )
    }

    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Analysis, |w| {
            w.uvarint(self.ipdom.len() as u64);
            for &node in &self.ipdom {
                w.uvarint(node as u64);
            }
            w.uvarint(self.cds.len() as u64);
            for deps in &self.cds {
                w.uvarint(deps.len() as u64);
                for &(stmt, outcome) in deps {
                    w.uvarint(stmt.0 as u64);
                    w.u8(outcome as u8);
                }
            }
            w.uvarint(self.member_of.len() as u64);
            for m in &self.member_of {
                match m {
                    None => w.u8(0),
                    Some(g) => {
                        w.u8(1);
                        w.uvarint(g.0 as u64);
                    }
                }
            }
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Analysis)?;
        let nipdom = r.len("ipdom nodes")?;
        let mut ipdom = Vec::with_capacity(nipdom);
        for _ in 0..nipdom {
            ipdom.push(r.uvarint()? as usize);
        }
        let ncds = r.len("cds rows")?;
        let mut cds = Vec::with_capacity(ncds);
        for _ in 0..ncds {
            let ndeps = r.len("cds deps")?;
            let mut deps = Vec::with_capacity(ndeps);
            for _ in 0..ndeps {
                let stmt = StmtId(r.uvarint()? as u32);
                let outcome = match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return r.err(format!("bad outcome tag {t}")),
                };
                deps.push((stmt, outcome));
            }
            cds.push(deps);
        }
        let nmembers = r.len("cluster members")?;
        let mut member_of = Vec::with_capacity(nmembers);
        for _ in 0..nmembers {
            member_of.push(match r.u8()? {
                0 => None,
                1 => Some(CondGroupId(r.uvarint()? as u32)),
                t => return r.err(format!("bad membership tag {t}")),
            });
        }
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(FuncAnalysisArtifact {
            ipdom,
            cds,
            member_of,
            elapsed,
        })
    }
}

impl FuncRaceArtifact {
    /// Captures one function's race summary.
    pub fn of(summary: mcr_analysis::FuncRaceSummary, elapsed: Duration) -> FuncRaceArtifact {
        FuncRaceArtifact { summary, elapsed }
    }

    /// The cached summary, if it fits `func` (same statement count and
    /// per-statement table shapes). `None` on a content-hash collision
    /// or corrupted cache — callers re-summarize.
    pub fn rehydrate(&self, func: &mcr_lang::Function) -> Option<mcr_analysis::FuncRaceSummary> {
        if self.summary.fits(func) {
            Some(self.summary.clone())
        } else {
            None
        }
    }

    /// Serializes the artifact to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        frame(Kind::Race, |w| {
            mcr_dump::wire::write_race_summary(w, &self.summary);
            w.duration(self.elapsed);
        })
    }

    /// Parses an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = unframe(bytes, Kind::Race)?;
        let summary = mcr_dump::wire::read_race_summary(&mut r)?;
        let elapsed = r.duration()?;
        r.finish()?;
        Ok(FuncRaceArtifact { summary, elapsed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_lang::Pc;

    #[test]
    fn index_artifact_round_trip() {
        let art = FailureIndexArtifact {
            index: Some(ExecutionIndex::new(vec![
                IndexEntry::Func(FuncId(3)),
                IndexEntry::Branch {
                    func: FuncId(3),
                    key: PredKey::Stmt(StmtId(7)),
                    outcome: true,
                },
                IndexEntry::Branch {
                    func: FuncId(3),
                    key: PredKey::Cluster(CondGroupId(2)),
                    outcome: false,
                },
                IndexEntry::Stmt(Pc::new(FuncId(3), StmtId(9))),
            ])),
            elapsed: Duration::from_micros(42),
        };
        let bytes = art.to_bytes();
        let back = FailureIndexArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(art, back);
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn plan_artifact_round_trip() {
        let art = CompiledPlanArtifact {
            plan_bytes: b"MCRD-opaque-plan-payload".to_vec(),
            elapsed: Duration::from_micros(17),
        };
        let bytes = art.to_bytes();
        let back = CompiledPlanArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(art, back);
        assert_eq!(bytes, back.to_bytes());
        // Kind confusion with pipeline artifacts is rejected.
        assert!(SearchArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn analysis_artifact_round_trip() {
        let p = mcr_lang::compile(
            "global x: int; fn main() { if (x > 0 && x < 5) { x = 1; } while (x) { x = x - 1; } }",
        )
        .unwrap();
        let fa = mcr_analysis::FuncAnalysis::new(&p.funcs[0]);
        let art = FuncAnalysisArtifact::of(&fa, Duration::from_micros(9));
        let bytes = art.to_bytes();
        let back = FuncAnalysisArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(art, back);
        assert_eq!(bytes, back.to_bytes());
        // Rehydration onto the same function succeeds and preserves the
        // analysis facts; a different function is rejected.
        let re = back.rehydrate(&p.funcs[0]).expect("parts fit");
        assert_eq!(re.ipdoms(), fa.ipdoms());
        assert_eq!(re.cluster_memberships(), fa.cluster_memberships());
        let other = mcr_lang::compile("fn main() { }").unwrap();
        assert!(back.rehydrate(&other.funcs[0]).is_none());
        // Kind confusion with plan artifacts is rejected.
        assert!(CompiledPlanArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn kind_confusion_rejected() {
        let art = FailureIndexArtifact {
            index: None,
            elapsed: Duration::ZERO,
        };
        let bytes = art.to_bytes();
        let err = AlignmentArtifact::from_bytes(&bytes).unwrap_err();
        assert!(err.msg.contains("kind"), "{err}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let art = RankedAccessesArtifact {
            ranked: vec![],
            elapsed: Duration::ZERO,
        };
        let mut bytes = art.to_bytes();
        bytes.push(0);
        assert!(RankedAccessesArtifact::from_bytes(&bytes).is_err());
    }

    #[test]
    fn search_artifact_round_trip_with_winning_set() {
        let cand = AnnotatedCandidate {
            point: PreemptionPoint {
                tid: ThreadId(1),
                sync_seq: 3,
                kind: CandidateKind::AfterRelease,
                step: 99,
                pc: Some(Pc::new(FuncId(1), StmtId(4))),
            },
            accesses: vec![RankedAccess {
                serial: 10,
                step: 10,
                tid: ThreadId(1),
                pc: Pc::new(FuncId(1), StmtId(5)),
                loc: MemLoc::GlobalElem(GlobalId(0), 1),
                is_write: true,
                priority: 1,
            }],
            best_priority: 1,
            access_locs: [CoarseLoc::Global(GlobalId(0)), CoarseLoc::Heap(ObjId(2))]
                .into_iter()
                .collect(),
        };
        let art = SearchArtifact {
            result: SearchResult {
                reproduced: true,
                tries: 7,
                combinations_tested: 3,
                winning: Some(vec![cand]),
                wall_time: Duration::from_millis(12),
                cut_off: false,
                cancelled: false,
            },
            elapsed: Duration::from_millis(13),
        };
        let back = SearchArtifact::from_bytes(&art.to_bytes()).unwrap();
        assert_eq!(art, back);
    }
}
