//! The staged, resumable reproduction session.
//!
//! [`ReproSession`] drives the paper's pipeline as a typed phase state
//! machine — `Indexed` → `Aligned` → `Diffed` → `Ranked` → `Searched` —
//! where every phase is an independently runnable method producing an
//! owned, serializable artifact (see [`crate::artifact`]):
//!
//! | phase | method | artifact |
//! |---|---|---|
//! | [`Phase::Index`] | [`ReproSession::run_index`] | [`FailureIndexArtifact`] |
//! | [`Phase::Align`] | [`ReproSession::run_align`] | [`AlignmentArtifact`] |
//! | [`Phase::Diff`] | [`ReproSession::run_diff`] | [`DumpDeltaArtifact`] |
//! | [`Phase::Rank`] | [`ReproSession::run_rank`] | [`RankedAccessesArtifact`] |
//! | [`Phase::Search`] | [`ReproSession::run_search`] | [`SearchArtifact`] |
//!
//! Running a phase implicitly runs any prerequisite phase that has not
//! produced its artifact yet, and re-running a completed phase is a
//! no-op returning the stored artifact.
//!
//! After any phase the whole session — options, input, failure dump,
//! artifacts — serializes to bytes with [`ReproSession::checkpoint`] and
//! comes back in a *fresh process* with [`ReproSession::resume`] (only
//! the compiled [`Program`] is supplied externally; it is not part of
//! the checkpoint, exactly as a real core dump does not embed the
//! binary). Because every pipeline stage is deterministic, a resumed
//! session finishes to the same [`ReproReport`] the uninterrupted run
//! produces.
//!
//! Long-running phases poll the session's [`CancelToken`] and the
//! per-phase [`PhaseBudget`]s: align/diff interrupt with
//! [`ReproError::Cancelled`]/[`ReproError::BudgetExhausted`], while the
//! search unwinds into a *partial* [`SearchArtifact`] (its
//! [`SearchResult::cancelled`](mcr_search::SearchResult::cancelled) flag
//! set) so a service can still report how far it got.

use crate::artifact::{
    AlignmentArtifact, DumpDeltaArtifact, FailureIndexArtifact, RankedAccessesArtifact,
    SearchArtifact,
};
use crate::observe::{NullPhaseObserver, Phase, PhaseEvent, PhaseObserver};
use crate::pipeline::{
    AlignMode, PhaseBudget, PhaseBudgets, ReproError, ReproOptions, ReproReport, ReproTimings,
};
use mcr_analysis::ProgramAnalysis;
use mcr_dump::wire::{Reader, Writer};
use mcr_dump::{
    reachable_vars, resolve_loc, CoreDump, DecodeError, DumpDiff, DumpReason, ResolvedVar,
    TraverseLimits,
};
use mcr_index::{reverse_index, AlignSignal, Aligner, Alignment};
use mcr_lang::Program;
use mcr_search::{annotate, find_schedule, Algorithm, CancelToken, SearchConfig, SyncLogger};
use mcr_slice::{backward_slice, rank_csv_accesses, Strategy, TraceCollector};
use mcr_vm::{run_until, DeterministicScheduler, Failure, MemLoc, Outcome, Tee, ThreadId, Vm};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

const MAGIC: &[u8; 4] = b"MCRS";
const VERSION: u8 = 1;

/// How many interruption polls share one `Instant::now()` read inside
/// the align/diff step loops (cancellation is checked on every poll —
/// an atomic load — only the wall clock is cached).
const WALL_POLL_PERIOD: u32 = 256;

/// Polls cancellation and a phase's wall-clock budget from inside a
/// `run_until` stop predicate.
struct Interrupt {
    cancel: CancelToken,
    deadline: Option<Instant>,
    polls: u32,
    expired: bool,
}

impl Interrupt {
    fn new(cancel: CancelToken, budget: Option<PhaseBudget>) -> Interrupt {
        Interrupt {
            cancel,
            deadline: budget
                .and_then(|b| b.wall)
                .map(|wall| Instant::now() + wall),
            polls: 0,
            expired: false,
        }
    }

    /// Whether the phase should stop now. Called once per VM step.
    fn fired(&mut self) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        if self.expired {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        let n = self.polls;
        self.polls = n.wrapping_add(1);
        if !n.is_multiple_of(WALL_POLL_PERIOD) {
            return false;
        }
        self.expired = Instant::now() >= deadline;
        self.expired
    }

    /// Converts an interruption into the phase's error (cancellation
    /// wins over budget expiry when both hold).
    fn error(&self, phase: Phase) -> ReproError {
        if self.cancel.is_cancelled() {
            ReproError::Cancelled(phase)
        } else {
            ReproError::BudgetExhausted(phase)
        }
    }

    fn interrupted(&self) -> bool {
        self.cancel.is_cancelled() || self.expired
    }
}

/// The artifacts a session has produced so far.
#[derive(Debug, Clone, Default, PartialEq)]
struct Artifacts {
    index: Option<FailureIndexArtifact>,
    align: Option<AlignmentArtifact>,
    delta: Option<DumpDeltaArtifact>,
    ranked: Option<RankedAccessesArtifact>,
    search: Option<SearchArtifact>,
}

/// A staged, resumable reproduction job on one failure dump.
///
/// See the [module docs](crate::session) for the phase model and
/// checkpoint/resume semantics, and [`Reproducer`](crate::Reproducer)
/// for the one-call wrapper.
pub struct ReproSession<'p> {
    program: &'p Program,
    analysis: ProgramAnalysis,
    options: ReproOptions,
    input: Vec<i64>,
    failure_dump: CoreDump,
    failure: Failure,
    cancel: CancelToken,
    observer: Box<dyn PhaseObserver + 'p>,
    artifacts: Artifacts,
}

impl std::fmt::Debug for ReproSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproSession")
            .field("options", &self.options)
            .field("input", &self.input)
            .field("failure", &self.failure)
            .field("completed", &self.completed())
            .finish_non_exhaustive()
    }
}

impl<'p> ReproSession<'p> {
    /// Opens a session on a failure dump (running the static analysis).
    ///
    /// # Errors
    ///
    /// [`ReproError::NotAFailureDump`] when the dump carries no failure.
    pub fn new(
        program: &'p Program,
        failure_dump: CoreDump,
        input: &[i64],
        options: ReproOptions,
    ) -> Result<Self, ReproError> {
        Self::from_parts(
            program,
            ProgramAnalysis::analyze(program),
            failure_dump,
            input.to_vec(),
            options,
        )
    }

    pub(crate) fn from_parts(
        program: &'p Program,
        analysis: ProgramAnalysis,
        failure_dump: CoreDump,
        input: Vec<i64>,
        options: ReproOptions,
    ) -> Result<Self, ReproError> {
        let failure = failure_dump.failure().ok_or(ReproError::NotAFailureDump)?;
        Ok(ReproSession {
            program,
            analysis,
            options,
            input,
            failure_dump,
            failure,
            cancel: CancelToken::new(),
            observer: Box::new(NullPhaseObserver),
            artifacts: Artifacts::default(),
        })
    }

    /// The session's options.
    pub fn options(&self) -> &ReproOptions {
        &self.options
    }

    /// The failing input the session replays.
    pub fn input(&self) -> &[i64] {
        &self.input
    }

    /// The failure recorded in the dump.
    pub fn failure(&self) -> Failure {
        self.failure
    }

    /// A clone of the session's cancellation token. Firing it (from any
    /// thread) interrupts the in-flight phase — align/diff return
    /// [`ReproError::Cancelled`], the search returns a partial artifact.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attaches a progress observer (replacing any previous one).
    pub fn set_observer(&mut self, observer: Box<dyn PhaseObserver + 'p>) {
        self.observer = observer;
    }

    /// The latest completed phase, if any.
    pub fn completed(&self) -> Option<Phase> {
        if self.artifacts.search.is_some() {
            Some(Phase::Search)
        } else if self.artifacts.ranked.is_some() {
            Some(Phase::Rank)
        } else if self.artifacts.delta.is_some() {
            Some(Phase::Diff)
        } else if self.artifacts.align.is_some() {
            Some(Phase::Align)
        } else if self.artifacts.index.is_some() {
            Some(Phase::Index)
        } else {
            None
        }
    }

    /// The next phase [`ReproSession::run_to_end`] would execute, or
    /// `None` when the session is complete.
    pub fn next_phase(&self) -> Option<Phase> {
        match self.completed() {
            None => Some(Phase::Index),
            Some(p) => p.next(),
        }
    }

    /// Whether every phase has produced its artifact.
    pub fn is_complete(&self) -> bool {
        self.next_phase().is_none()
    }

    /// The index artifact, when the phase has run.
    pub fn index_artifact(&self) -> Option<&FailureIndexArtifact> {
        self.artifacts.index.as_ref()
    }

    /// The alignment artifact, when the phase has run.
    pub fn alignment_artifact(&self) -> Option<&AlignmentArtifact> {
        self.artifacts.align.as_ref()
    }

    /// The dump-delta artifact, when the phase has run.
    pub fn delta_artifact(&self) -> Option<&DumpDeltaArtifact> {
        self.artifacts.delta.as_ref()
    }

    /// The ranked-accesses artifact, when the phase has run.
    pub fn ranked_artifact(&self) -> Option<&RankedAccessesArtifact> {
        self.artifacts.ranked.as_ref()
    }

    /// The search artifact, when the phase has run.
    pub fn search_artifact(&self) -> Option<&SearchArtifact> {
        self.artifacts.search.as_ref()
    }

    fn emit(&mut self, event: PhaseEvent) {
        self.observer.on_event(&event);
    }

    /// Guards phase entry: even phases without an interruptible loop
    /// refuse to start once the token has fired. No event fires here —
    /// the phase never Started, so it needs no terminal event.
    fn check_entry(&mut self, phase: Phase) -> Result<(), ReproError> {
        if self.cancel.is_cancelled() {
            return Err(ReproError::Cancelled(phase));
        }
        Ok(())
    }

    /// Phase 1: reverse engineering the failure's execution index
    /// (§3.2, Algorithm 1). Under
    /// [`AlignMode::InstructionCount`] the artifact carries no index.
    ///
    /// # Errors
    ///
    /// [`ReproError::Reverse`] when the index cannot be reconstructed,
    /// [`ReproError::Cancelled`] when the token fired first.
    pub fn run_index(&mut self) -> Result<&FailureIndexArtifact, ReproError> {
        if self.artifacts.index.is_none() {
            self.check_entry(Phase::Index)?;
            self.emit(PhaseEvent::Started {
                phase: Phase::Index,
            });
            let t0 = Instant::now();
            let index = match self.options.align_mode {
                AlignMode::ExecutionIndex => {
                    match reverse_index(self.program, &self.analysis, &self.failure_dump) {
                        Ok(idx) => Some(idx),
                        Err(e) => {
                            self.emit(PhaseEvent::Interrupted {
                                phase: Phase::Index,
                            });
                            return Err(e.into());
                        }
                    }
                }
                AlignMode::InstructionCount => None,
            };
            let elapsed = t0.elapsed();
            self.artifacts.index = Some(FailureIndexArtifact { index, elapsed });
            self.emit(PhaseEvent::Finished {
                phase: Phase::Index,
                elapsed,
            });
        }
        Ok(self.artifacts.index.as_ref().expect("just stored"))
    }

    /// Phase 2: the deterministic passing run — aligned-point location
    /// (§3.3, Fig. 7) plus the sync/shared-access log the search needs.
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_index`], plus
    /// [`ReproError::NoSuchThread`], [`ReproError::Cancelled`] and
    /// [`ReproError::BudgetExhausted`].
    pub fn run_align(&mut self) -> Result<&AlignmentArtifact, ReproError> {
        self.run_index()?;
        if self.artifacts.align.is_none() {
            self.check_entry(Phase::Align)?;
            // Validation precedes the Started event so observers never
            // see a phase start that can have no terminal event.
            let focus = self.failure_dump.focus;
            if focus.0 as usize >= 1 && self.program.funcs.is_empty() {
                return Err(ReproError::NoSuchThread(focus));
            }
            self.emit(PhaseEvent::Started {
                phase: Phase::Align,
            });
            let budget = self.options.budgets.get(Phase::Align);
            let max_steps = effective_steps(self.options.max_steps, budget);
            let mut guard = Interrupt::new(self.cancel.clone(), budget);

            let t0 = Instant::now();
            let mut vm = Vm::new(self.program, &self.input);
            let mut logger = SyncLogger::new();
            let index = self
                .artifacts
                .index
                .as_ref()
                .expect("index phase ran")
                .index
                .clone();
            let (alignment, deterministic_repro, passing_run) = match &index {
                Some(idx) => {
                    let mut aligner = Aligner::new(self.program, &self.analysis, focus, idx);
                    let outcome = {
                        let mut tee = Tee {
                            a: &mut aligner,
                            b: &mut logger,
                        };
                        let mut sched = DeterministicScheduler::new();
                        run_until(&mut vm, &mut sched, &mut tee, max_steps, |_| guard.fired())
                    };
                    if guard.interrupted() {
                        self.emit(PhaseEvent::Interrupted {
                            phase: Phase::Align,
                        });
                        return Err(guard.error(Phase::Align));
                    }
                    let deterministic =
                        matches!(outcome, Outcome::Crashed(f) if f.same_bug(&self.failure));
                    (aligner.finish(), deterministic, logger.finish())
                }
                None => {
                    // Instruction-count alignment (Table 5 baseline): one
                    // full logged run; the aligned point is found on the
                    // fly, so no second execution is needed.
                    let target_instrs = self.failure_dump.focus_thread().instrs;
                    let failure_pc = self.failure.pc;
                    let mut sched = DeterministicScheduler::new();
                    let mut reached: Option<u64> = None;
                    let mut aligned_at: Option<u64> = None;
                    let mut scanning = true;
                    let outcome = run_until(&mut vm, &mut sched, &mut logger, max_steps, |vm| {
                        if guard.fired() {
                            return true;
                        }
                        if scanning {
                            if let Some(th) = vm.threads().get(focus.0 as usize) {
                                if th.instrs >= target_instrs {
                                    if reached.is_none() {
                                        reached = Some(vm.steps());
                                    }
                                    // Scan for the failure PC from here on.
                                    if th.pc() == Some(failure_pc) {
                                        aligned_at = Some(vm.steps());
                                        scanning = false;
                                    } else if vm.steps() > reached.unwrap() + 200_000 {
                                        // Give up the PC scan after a
                                        // grace window.
                                        aligned_at = reached;
                                        scanning = false;
                                    }
                                }
                            }
                        }
                        false
                    });
                    if guard.interrupted() {
                        self.emit(PhaseEvent::Interrupted {
                            phase: Phase::Align,
                        });
                        return Err(guard.error(Phase::Align));
                    }
                    // If the run ended before the scan concluded, align at
                    // the point the count was reached (or the end).
                    let step = aligned_at
                        .or(reached)
                        .unwrap_or_else(|| vm.steps().saturating_sub(1));
                    let deterministic =
                        matches!(outcome, Outcome::Crashed(f) if f.same_bug(&self.failure));
                    let alignment = Alignment {
                        signal: AlignSignal::Closest,
                        step,
                        remaining: 0,
                    };
                    (alignment, deterministic, logger.finish())
                }
            };
            let elapsed = t0.elapsed();
            self.artifacts.align = Some(AlignmentArtifact {
                alignment,
                deterministic_repro,
                passing_run,
                elapsed,
            });
            self.emit(PhaseEvent::Finished {
                phase: Phase::Align,
                elapsed,
            });
        }
        Ok(self.artifacts.align.as_ref().expect("just stored"))
    }

    /// Phase 3: replay to the aligned point, capture the aligned dump
    /// and the dependence trace, and compare the dumps to find the
    /// critical shared variables (§4).
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_align`], plus [`ReproError::Codec`]
    /// when a dump fails to round-trip through the codec.
    pub fn run_diff(&mut self) -> Result<&DumpDeltaArtifact, ReproError> {
        self.run_align()?;
        if self.artifacts.delta.is_none() {
            self.check_entry(Phase::Diff)?;
            self.emit(PhaseEvent::Started { phase: Phase::Diff });
            let budget = self.options.budgets.get(Phase::Diff);
            let max_steps = effective_steps(self.options.max_steps, budget);
            let mut guard = Interrupt::new(self.cancel.clone(), budget);
            let alignment = self.artifacts.align.as_ref().expect("align ran").alignment;
            let focus = self.failure_dump.focus;

            // Replay to the aligned point; capture dump + trace.
            let t0 = Instant::now();
            let mut replay = Vm::new(self.program, &self.input);
            let mut collector =
                TraceCollector::new(self.program, &self.analysis, self.options.trace_window);
            {
                let mut sched = DeterministicScheduler::new();
                let stop_after = alignment.step;
                run_until(&mut replay, &mut sched, &mut collector, max_steps, |vm| {
                    guard.fired() || vm.steps() > stop_after
                });
            }
            if guard.interrupted() {
                self.emit(PhaseEvent::Interrupted { phase: Phase::Diff });
                return Err(guard.error(Phase::Diff));
            }
            let aligned_focus = if (focus.0 as usize) < replay.threads().len() {
                focus
            } else {
                ThreadId(0)
            };
            let aligned_dump = CoreDump::capture(&replay, aligned_focus, DumpReason::Aligned);
            let trace = collector.finish();
            let replay_elapsed = t0.elapsed();
            self.emit(PhaseEvent::Stage {
                phase: Phase::Diff,
                stage: "replay",
                elapsed: replay_elapsed,
            });

            // Dump comparison ("parse" covers encode/decode and
            // traversal, the GDB-dominated cost of the paper's Table 6).
            let t0 = Instant::now();
            let failure_bytes = mcr_dump::encode(&self.failure_dump);
            let aligned_bytes = mcr_dump::encode(&aligned_dump);
            let failure_reparsed = match mcr_dump::decode(&failure_bytes) {
                Ok(dump) => dump,
                Err(e) => {
                    self.emit(PhaseEvent::Interrupted { phase: Phase::Diff });
                    return Err(ReproError::Codec(e));
                }
            };
            let aligned_reparsed = match mcr_dump::decode(&aligned_bytes) {
                Ok(dump) => dump,
                Err(e) => {
                    self.emit(PhaseEvent::Interrupted { phase: Phase::Diff });
                    return Err(ReproError::Codec(e));
                }
            };
            let vars_fail = reachable_vars(&failure_reparsed, self.options.limits);
            let vars_aligned = reachable_vars(&aligned_reparsed, self.options.limits);
            let parse_elapsed = t0.elapsed();
            self.emit(PhaseEvent::Stage {
                phase: Phase::Diff,
                stage: "dump-parse",
                elapsed: parse_elapsed,
            });

            let t0 = Instant::now();
            let diff = DumpDiff::compare_maps(&vars_fail, &vars_aligned);
            let diff_elapsed = t0.elapsed();
            self.emit(PhaseEvent::Stage {
                phase: Phase::Diff,
                stage: "diff",
                elapsed: diff_elapsed,
            });

            // Resolve CSV paths to passing-run locations.
            let csv_locs: Vec<MemLoc> = diff
                .csvs
                .iter()
                .filter_map(|path| resolve_loc(&aligned_dump, path))
                .filter_map(|rv| match rv {
                    ResolvedVar::Global(g) => Some(MemLoc::Global(g)),
                    ResolvedVar::GlobalElem(g, i) => Some(MemLoc::GlobalElem(g, i)),
                    ResolvedVar::Heap(o, i) => Some(MemLoc::Heap(o, i)),
                    _ => None,
                })
                .collect();

            let elapsed = replay_elapsed + parse_elapsed + diff_elapsed;
            self.artifacts.delta = Some(DumpDeltaArtifact {
                failure_dump_bytes: failure_bytes.len(),
                aligned_dump_bytes: aligned_bytes.len(),
                vars: diff.vars_a,
                diffs: diff.diff_count(),
                shared: diff.shared_compared,
                csv_paths: diff.csvs,
                csv_locs,
                trace,
                replay_elapsed,
                parse_elapsed,
                diff_elapsed,
            });
            self.emit(PhaseEvent::Finished {
                phase: Phase::Diff,
                elapsed,
            });
        }
        Ok(self.artifacts.delta.as_ref().expect("just stored"))
    }

    /// Phase 4: prioritize the CSV accesses of the dependence trace
    /// (temporal closeness or dependence distance, per
    /// [`ReproOptions::strategy`]).
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_diff`].
    pub fn run_rank(&mut self) -> Result<&RankedAccessesArtifact, ReproError> {
        self.run_diff()?;
        if self.artifacts.ranked.is_none() {
            self.check_entry(Phase::Rank)?;
            self.emit(PhaseEvent::Started { phase: Phase::Rank });
            let delta = self.artifacts.delta.as_ref().expect("diff ran");
            let trace = &delta.trace;
            let csv_set: HashSet<MemLoc> = delta.csv_locs.iter().copied().collect();

            let t0 = Instant::now();
            let aligned_serial = trace.last().map(|e| e.serial).unwrap_or(0);
            let slice = match self.options.strategy {
                Strategy::Dependence => {
                    let criteria: Vec<u64> = trace.last().map(|e| e.serial).into_iter().collect();
                    Some(backward_slice(trace, &criteria))
                }
                Strategy::Temporal => None,
            };
            let ranked = rank_csv_accesses(
                trace,
                aligned_serial,
                &csv_set,
                self.options.strategy,
                slice.as_ref(),
            );
            let elapsed = t0.elapsed();
            self.artifacts.ranked = Some(RankedAccessesArtifact { ranked, elapsed });
            self.emit(PhaseEvent::Finished {
                phase: Phase::Rank,
                elapsed,
            });
        }
        Ok(self.artifacts.ranked.as_ref().expect("just stored"))
    }

    /// Phase 5: the directed schedule search (§5, Algorithm 2).
    ///
    /// Cancellation mid-search does *not* error: the phase completes
    /// with a partial [`SearchArtifact`] whose result carries
    /// `cancelled = true`, so [`ReproSession::report`] still yields a
    /// (partial) report.
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_rank`].
    pub fn run_search(&mut self) -> Result<&SearchArtifact, ReproError> {
        self.run_rank()?;
        if self.artifacts.search.is_none() {
            self.emit(PhaseEvent::Started {
                phase: Phase::Search,
            });
            let ranked = &self.artifacts.ranked.as_ref().expect("rank ran").ranked;
            let delta = self.artifacts.delta.as_ref().expect("diff ran");
            let align = self.artifacts.align.as_ref().expect("align ran");
            let csv_set: HashSet<MemLoc> = delta.csv_locs.iter().copied().collect();

            let t0 = Instant::now();
            let mut priorities: HashMap<(u64, MemLoc, bool), u32> = HashMap::new();
            for r in ranked {
                let e = priorities
                    .entry((r.step, r.loc, r.is_write))
                    .or_insert(r.priority);
                *e = (*e).min(r.priority);
            }
            let (candidates, future) = annotate(&align.passing_run, &csv_set, &priorities);
            let fresh = Vm::new(self.program, &self.input);
            let budget = self.options.budgets.get(Phase::Search);
            let mut search_config = SearchConfig {
                parallelism: self.options.parallelism.max(1),
                cancel: self.cancel.clone(),
                ..self.options.search.clone()
            };
            if let Some(b) = budget {
                if let Some(wall) = b.wall {
                    search_config.time_budget =
                        Some(search_config.time_budget.map_or(wall, |t| t.min(wall)));
                }
                if let Some(steps) = b.max_steps {
                    search_config.max_steps = search_config.max_steps.min(steps);
                }
            }
            let result = find_schedule(
                &fresh,
                &candidates,
                &future,
                self.failure,
                self.options.algorithm,
                &search_config,
            );
            let elapsed = t0.elapsed();
            // A cancelled search still Finishes (with a partial
            // artifact, `result.cancelled` set); Interrupted is reserved
            // for phases that produced nothing.
            self.artifacts.search = Some(SearchArtifact { result, elapsed });
            self.emit(PhaseEvent::Finished {
                phase: Phase::Search,
                elapsed,
            });
        }
        Ok(self.artifacts.search.as_ref().expect("just stored"))
    }

    /// Runs every remaining phase and returns the final report.
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    pub fn run_to_end(&mut self) -> Result<ReproReport, ReproError> {
        self.run_search()?;
        Ok(self.report().expect("all phases complete"))
    }

    /// Assembles the [`ReproReport`] once every phase has run (`None`
    /// before that).
    pub fn report(&self) -> Option<ReproReport> {
        let index = self.artifacts.index.as_ref()?;
        let align = self.artifacts.align.as_ref()?;
        let delta = self.artifacts.delta.as_ref()?;
        let ranked = self.artifacts.ranked.as_ref()?;
        let search = self.artifacts.search.as_ref()?;
        Some(ReproReport {
            index: index.index.clone(),
            alignment: align.alignment,
            failure_dump_bytes: delta.failure_dump_bytes,
            aligned_dump_bytes: delta.aligned_dump_bytes,
            vars: delta.vars,
            diffs: delta.diffs,
            shared: delta.shared,
            csv_paths: delta.csv_paths.clone(),
            csv_locs: delta.csv_locs.clone(),
            search: search.result.clone(),
            timings: ReproTimings {
                reverse: index.elapsed,
                passing_run: align.elapsed,
                replay: delta.replay_elapsed,
                dump_parse: delta.parse_elapsed,
                diff: delta.diff_elapsed,
                slicing: ranked.elapsed,
                search: search.elapsed,
            },
            deterministic_repro: align.deterministic_repro,
        })
    }

    /// Serializes the whole session — options, input, failure dump, and
    /// every artifact produced so far — to bytes. The compiled program
    /// is *not* included; supply it again to [`ReproSession::resume`].
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u8(VERSION);
        write_options(&mut w, &self.options);
        w.uvarint(self.input.len() as u64);
        for v in &self.input {
            w.ivarint(*v);
        }
        w.bytes(&mcr_dump::encode(&self.failure_dump));
        write_artifact(
            &mut w,
            &self.artifacts.index,
            FailureIndexArtifact::to_bytes,
        );
        write_artifact(&mut w, &self.artifacts.align, AlignmentArtifact::to_bytes);
        write_artifact(&mut w, &self.artifacts.delta, DumpDeltaArtifact::to_bytes);
        write_artifact(
            &mut w,
            &self.artifacts.ranked,
            RankedAccessesArtifact::to_bytes,
        );
        write_artifact(&mut w, &self.artifacts.search, SearchArtifact::to_bytes);
        w.into_bytes()
    }

    /// Restores a session from [`ReproSession::checkpoint`] bytes in a
    /// fresh process: only the compiled program is supplied externally
    /// (the static analysis is recomputed). The restored session
    /// continues from the first phase whose artifact is missing and
    /// produces the same report an uninterrupted run would.
    ///
    /// # Errors
    ///
    /// [`ReproError::Codec`] on corrupted or truncated bytes,
    /// [`ReproError::NotAFailureDump`] when the embedded dump carries no
    /// failure.
    pub fn resume(program: &'p Program, bytes: &[u8]) -> Result<Self, ReproError> {
        let mut r = Reader::new(bytes);
        r.expect_magic(MAGIC)?;
        let version = r.u8()?;
        if version != VERSION {
            return Err(ReproError::Codec(DecodeError {
                msg: format!("unsupported session version {version}"),
                offset: r.pos(),
            }));
        }
        let options = read_options(&mut r)?;
        let n = r.len("input")?;
        let mut input = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            input.push(r.ivarint()?);
        }
        let failure_dump = mcr_dump::decode(r.bytes()?)?;
        let artifacts = Artifacts {
            index: read_artifact(&mut r, FailureIndexArtifact::from_bytes)?,
            align: read_artifact(&mut r, AlignmentArtifact::from_bytes)?,
            delta: read_artifact(&mut r, DumpDeltaArtifact::from_bytes)?,
            ranked: read_artifact(&mut r, RankedAccessesArtifact::from_bytes)?,
            search: read_artifact(&mut r, SearchArtifact::from_bytes)?,
        };
        r.finish()?;
        let mut session = Self::from_parts(
            program,
            ProgramAnalysis::analyze(program),
            failure_dump,
            input,
            options,
        )?;
        session.artifacts = artifacts;
        Ok(session)
    }
}

/// Step cap for a phase: the options default, tightened by the phase
/// budget when one is set.
fn effective_steps(default: u64, budget: Option<PhaseBudget>) -> u64 {
    match budget.and_then(|b| b.max_steps) {
        Some(cap) => default.min(cap),
        None => default,
    }
}

fn write_artifact<T>(w: &mut Writer, artifact: &Option<T>, to_bytes: impl Fn(&T) -> Vec<u8>) {
    match artifact {
        None => w.bool(false),
        Some(a) => {
            w.bool(true);
            w.bytes(&to_bytes(a));
        }
    }
}

fn read_artifact<T>(
    r: &mut Reader<'_>,
    from_bytes: impl Fn(&[u8]) -> Result<T, DecodeError>,
) -> Result<Option<T>, DecodeError> {
    Ok(if r.bool()? {
        Some(from_bytes(r.bytes()?)?)
    } else {
        None
    })
}

fn write_options(w: &mut Writer, o: &ReproOptions) {
    w.u8(match o.strategy {
        Strategy::Temporal => 0,
        Strategy::Dependence => 1,
    });
    w.u8(match o.align_mode {
        AlignMode::ExecutionIndex => 0,
        AlignMode::InstructionCount => 1,
    });
    w.u8(match o.algorithm {
        Algorithm::Chess => 0,
        Algorithm::ChessX => 1,
    });
    w.uvarint(o.search.preemption_bound as u64);
    w.uvarint(o.search.max_tries);
    w.opt_duration(o.search.time_budget);
    w.uvarint(o.search.max_steps);
    w.uvarint(o.search.pair_pool as u64);
    w.uvarint(o.search.parallelism as u64);
    w.uvarint(o.trace_window as u64);
    w.uvarint(o.max_steps);
    w.uvarint(o.limits.max_depth as u64);
    w.uvarint(o.limits.max_paths as u64);
    w.uvarint(o.parallelism as u64);
    for phase in crate::observe::PHASES {
        match o.budgets.get(phase) {
            None => w.bool(false),
            Some(b) => {
                w.bool(true);
                w.opt_uvarint(b.max_steps);
                w.opt_duration(b.wall);
            }
        }
    }
}

fn read_options(r: &mut Reader<'_>) -> Result<ReproOptions, DecodeError> {
    let strategy = match r.u8()? {
        0 => Strategy::Temporal,
        1 => Strategy::Dependence,
        t => return r.err(format!("bad strategy tag {t}")),
    };
    let align_mode = match r.u8()? {
        0 => AlignMode::ExecutionIndex,
        1 => AlignMode::InstructionCount,
        t => return r.err(format!("bad align mode tag {t}")),
    };
    let algorithm = match r.u8()? {
        0 => Algorithm::Chess,
        1 => Algorithm::ChessX,
        t => return r.err(format!("bad algorithm tag {t}")),
    };
    let search = SearchConfig {
        preemption_bound: r.uvarint()? as usize,
        max_tries: r.uvarint()?,
        time_budget: r.opt_duration()?,
        max_steps: r.uvarint()?,
        pair_pool: r.uvarint()? as usize,
        parallelism: r.uvarint()? as usize,
        // The token is process-local state; a resumed session gets a
        // fresh one.
        cancel: CancelToken::new(),
    };
    let trace_window = r.uvarint()? as usize;
    let max_steps = r.uvarint()?;
    let limits = TraverseLimits {
        max_depth: r.uvarint()? as usize,
        max_paths: r.uvarint()? as usize,
    };
    let parallelism = r.uvarint()? as usize;
    let mut budgets = PhaseBudgets::default();
    for phase in crate::observe::PHASES {
        if r.bool()? {
            budgets.set(
                phase,
                PhaseBudget {
                    max_steps: r.opt_uvarint()?,
                    wall: r.opt_duration()?,
                },
            );
        }
    }
    Ok(ReproOptions {
        strategy,
        align_mode,
        algorithm,
        search,
        trace_window,
        max_steps,
        limits,
        parallelism,
        budgets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TimingLog;
    use crate::stress::find_failure;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::time::Duration;

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    fn fig1_session(p: &Program, options: ReproOptions) -> ReproSession<'_> {
        let input = [0i64, 1];
        let sf = find_failure(p, &input, 0..200_000, 1_000_000).expect("stress exposes");
        ReproSession::new(p, sf.dump, &input, options).unwrap()
    }

    #[test]
    fn phases_run_one_at_a_time() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        assert_eq!(s.completed(), None);
        assert_eq!(s.next_phase(), Some(Phase::Index));
        s.run_index().unwrap();
        assert_eq!(s.completed(), Some(Phase::Index));
        s.run_align().unwrap();
        assert_eq!(s.completed(), Some(Phase::Align));
        s.run_diff().unwrap();
        s.run_rank().unwrap();
        assert_eq!(s.next_phase(), Some(Phase::Search));
        assert!(s.report().is_none(), "no report before the search");
        s.run_search().unwrap();
        assert!(s.is_complete());
        let report = s.report().unwrap();
        assert!(report.search.reproduced);
    }

    #[test]
    fn later_phases_pull_in_prerequisites() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        // Jumping straight to the diff phase runs index + align first.
        s.run_diff().unwrap();
        assert_eq!(s.completed(), Some(Phase::Diff));
        assert!(s.index_artifact().is_some());
        assert!(s.alignment_artifact().is_some());
    }

    #[test]
    fn observer_sees_all_phases_in_order() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        let log = Rc::new(RefCell::new(TimingLog::new()));
        s.set_observer(Box::new(Rc::clone(&log)));
        s.run_to_end().unwrap();
        let finished: Vec<Phase> = log
            .borrow()
            .finished()
            .iter()
            .map(|(phase, _)| *phase)
            .collect();
        assert_eq!(finished, crate::observe::PHASES);
        // The diff phase's sub-stages were reported too.
        let stages: Vec<&str> = log
            .borrow()
            .events
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::Stage { stage, .. } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(stages, ["replay", "dump-parse", "diff"]);
    }

    #[test]
    fn cancelled_session_refuses_phase_entry() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        s.cancel_token().cancel();
        assert!(matches!(
            s.run_index(),
            Err(ReproError::Cancelled(Phase::Index))
        ));
    }

    #[test]
    fn align_wall_budget_interrupts() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let options = ReproOptions::builder()
            .budget(Phase::Align, PhaseBudget::wall(Duration::ZERO))
            .build();
        let mut s = fig1_session(&p, options);
        assert!(matches!(
            s.run_align(),
            Err(ReproError::BudgetExhausted(Phase::Align))
        ));
        // The index artifact survived; lifting the budget resumes.
        assert!(s.index_artifact().is_some());
    }
}
