//! The staged, resumable, cache-aware reproduction session.
//!
//! [`ReproSession`] drives the paper's pipeline as a typed phase graph —
//! `Indexed` → `Aligned` → `Diffed` → `Ranked` → `Searched` — where each
//! stage is an implementation of the generic
//! [`PipelinePhase`] trait (see [`crate::phase`]):
//!
//! | phase | implementation | artifact |
//! |---|---|---|
//! | [`Phase::Index`] | [`IndexPhase`] | [`FailureIndexArtifact`] |
//! | [`Phase::Align`] | [`AlignPhase`] | [`AlignmentArtifact`] |
//! | [`Phase::Diff`] | [`DiffPhase`] | [`DumpDeltaArtifact`] |
//! | [`Phase::Rank`] | [`RankPhase`] | [`RankedAccessesArtifact`] |
//! | [`Phase::Search`] | [`SearchPhase`] | [`SearchArtifact`] |
//!
//! The session itself is a *thin driver* ([`ReproSession::run`]): it
//! resolves prerequisites, derives each phase's content-addressed
//! [`PhaseKey`] — a stable hash of *(program fingerprint, input, failure
//! dump, options, upstream artifact)* on the [`mcr_dump::wire`] encoding
//! — and consults the session's [`ArtifactStore`]. A key hit skips the
//! phase and rehydrates the cached artifact
//! ([`PhaseEvent::CacheHit`]); a computed artifact is written back, so a
//! fleet of sessions over near-duplicate dumps pays for each distinct
//! phase unit once. Because phases are deterministic, cached and
//! computed artifacts are bit-identical — the final [`ReproReport`] is
//! pinned to be the same cold, warm, or batched.
//!
//! Running a phase implicitly runs any prerequisite phase that has not
//! produced its artifact yet, and re-running a completed phase is a
//! no-op returning the stored artifact.
//!
//! After any phase the whole session — options, input, failure dump,
//! artifacts — serializes to bytes with [`ReproSession::checkpoint`] and
//! comes back in a *fresh process* with [`ReproSession::resume`] (only
//! the compiled [`Program`] is supplied externally; it is not part of
//! the checkpoint, exactly as a real core dump does not embed the
//! binary). Because every pipeline stage is deterministic, a resumed
//! session finishes to the same [`ReproReport`] the uninterrupted run
//! produces.
//!
//! Long-running phases poll the session's [`CancelToken`] and the
//! per-phase [`PhaseBudget`]s: align/diff interrupt with
//! [`ReproError::Cancelled`]/[`ReproError::BudgetExhausted`], while the
//! search unwinds into a *partial* [`SearchArtifact`] (its
//! [`SearchResult::cancelled`](mcr_search::SearchResult::cancelled) flag
//! set) so a service can still report how far it got.

use crate::artifact::{
    AlignmentArtifact, CompiledPlanArtifact, DumpDeltaArtifact, FailureIndexArtifact,
    FuncAnalysisArtifact, FuncRaceArtifact, RankedAccessesArtifact, SearchArtifact,
};
use crate::observe::{NullPhaseObserver, Phase, PhaseEvent, PhaseObserver};
use crate::phase::{AlignPhase, DiffPhase, IndexPhase, PipelinePhase, RankPhase, SearchPhase};
use crate::pipeline::{
    AlignMode, PhaseBudget, PhaseBudgets, ReproError, ReproOptions, ReproReport, ReproTimings,
};
use crate::store::{function_fingerprint, program_fingerprint, ArtifactStore, NullStore, PhaseKey};
use mcr_analysis::{FuncAnalysis, ProgramAnalysis, RaceAnalysis};
use mcr_dump::wire::{ContentHash, ContentHasher, Reader, Writer};
use mcr_dump::{CoreDump, DecodeError, TraverseLimits};
use mcr_lang::Program;
use mcr_search::{Algorithm, CancelToken, SearchConfig};
use mcr_slice::Strategy;
use mcr_vm::{DispatchPlan, Failure, FaultKind, FaultSpec, FunctionPlan, MemModel, ThreadId, Vm};
use std::cell::{Cell, OnceCell, RefCell};
use std::sync::Arc;
use std::time::Instant;

const MAGIC: &[u8; 4] = b"MCRS";
// v2: options carry the memory model and fault-injection plan.
// v3: options carry the static-race knob.
const VERSION: u8 = 3;

/// Function-granular cache counters of one session: how many of the
/// program's per-function compile/analysis units were rehydrated from
/// the store versus computed (and written back).
///
/// These are the numbers a recompile benchmark measures: after a
/// k-function edit, a warm session should report exactly `2 k` computed
/// units (one compile + one analysis unit per edited function) and
/// hits for everything else. Sessions without a caching store compile
/// and analyze whole programs directly and leave all counters zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncUnitStats {
    /// Per-function plan units rehydrated from the store.
    pub compile_hits: u64,
    /// Per-function plan units compiled (and written back).
    pub compile_computed: u64,
    /// Per-function analysis units rehydrated from the store.
    pub analysis_hits: u64,
    /// Per-function analysis units computed (and written back).
    pub analysis_computed: u64,
    /// Per-function static-race summary units rehydrated from the
    /// store (only resolved under [`ReproOptions::static_race`]).
    pub race_hits: u64,
    /// Per-function static-race summary units computed (and written
    /// back).
    pub race_computed: u64,
}

impl FuncUnitStats {
    /// Fraction of unit lookups that hit, in `[0, 1]` (0 when no unit
    /// was resolved).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.compile_hits + self.analysis_hits + self.race_hits;
        let total = hits + self.recomputed();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Units that had to be computed (compile + analysis + race).
    pub fn recomputed(&self) -> u64 {
        self.compile_computed + self.analysis_computed + self.race_computed
    }

    /// Adds every counter of `o` into `self` (how a benchmark
    /// aggregates across the sessions of a revision stream).
    pub fn absorb(&mut self, o: &FuncUnitStats) {
        self.compile_hits += o.compile_hits;
        self.compile_computed += o.compile_computed;
        self.analysis_hits += o.analysis_hits;
        self.analysis_computed += o.analysis_computed;
        self.race_hits += o.race_hits;
        self.race_computed += o.race_computed;
    }
}

/// The artifacts a session has produced so far.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Artifacts {
    pub(crate) index: Option<FailureIndexArtifact>,
    pub(crate) align: Option<AlignmentArtifact>,
    pub(crate) delta: Option<DumpDeltaArtifact>,
    pub(crate) ranked: Option<RankedAccessesArtifact>,
    pub(crate) search: Option<SearchArtifact>,
}

/// A staged, resumable reproduction job on one failure dump.
///
/// See the [module docs](crate::session) for the phase model, the
/// content-addressed caching, and checkpoint/resume semantics; see
/// [`Reproducer`](crate::Reproducer) for the one-call wrapper.
pub struct ReproSession<'p> {
    pub(crate) program: &'p Program,
    /// The static analysis, resolved lazily on first use: seeded
    /// eagerly by [`Reproducer`](crate::Reproducer) (which analyzes its
    /// program once for all sessions), otherwise assembled per function
    /// — rehydrating cached [`FuncAnalysisArtifact`] units when the
    /// store caches, computing and writing back the rest.
    analysis: OnceCell<ProgramAnalysis>,
    pub(crate) options: ReproOptions,
    pub(crate) input: Vec<i64>,
    pub(crate) failure_dump: CoreDump,
    pub(crate) failure: Failure,
    pub(crate) cancel: CancelToken,
    observer: Box<dyn PhaseObserver + Send + 'p>,
    store: Arc<dyn ArtifactStore>,
    /// Content hash of the session identity: program fingerprint,
    /// failing input, failure dump, and the *result-relevant* options.
    /// Every phase key chains off this. Computed lazily — a session
    /// whose store never caches ([`NullStore`]) pays nothing for it.
    basis: Cell<Option<ContentHash>>,
    /// The program's Merkle-root fingerprint, memoized: sessions derive
    /// keys repeatedly and must not rehash the whole program each time.
    program_fp: OnceCell<ContentHash>,
    /// Per-function fingerprints (the Merkle leaves), memoized for the
    /// same reason — every function-scoped unit key reuses them.
    func_fps: OnceCell<Vec<ContentHash>>,
    /// Function-granular cache counters (see [`FuncUnitStats`]).
    unit_stats: Cell<FuncUnitStats>,
    pub(crate) artifacts: Artifacts,
    /// Content hash of each produced artifact's encoded bytes, indexed
    /// by [`Phase::index`]; filled lazily (encoding an artifact just to
    /// hash it is wasted work unless keys are actually consulted).
    hashes: [Cell<Option<ContentHash>>; 5],
    /// The program's direct-threaded [`DispatchPlan`], assembled (per
    /// function, from cached units where the store has them) on first
    /// use and shared by every VM the session spawns. A runtime
    /// attachment like the store itself: excluded from checkpoints — a
    /// resumed session recompiles or re-fetches it.
    plan: RefCell<Option<Arc<DispatchPlan>>>,
    /// The static race analysis, resolved lazily on first use by the
    /// search phase (and only under [`ReproOptions::static_race`] with
    /// no fault plan — `None` once resolved means disabled). Assembled
    /// per function against a caching store: unchanged functions'
    /// [`FuncRaceArtifact`] units rehydrate under
    /// [`Phase::StaticRace`] keys and only cache-missing functions are
    /// re-summarized. Like the plan, a runtime attachment excluded from
    /// checkpoints.
    race: OnceCell<Option<RaceAnalysis>>,
}

impl std::fmt::Debug for ReproSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproSession")
            .field("options", &self.options)
            .field("input", &self.input)
            .field("failure", &self.failure)
            .field("basis", &self.basis.get())
            .field("completed", &self.completed())
            .finish_non_exhaustive()
    }
}

impl<'p> ReproSession<'p> {
    /// Opens a session on a failure dump. The static analysis is
    /// resolved lazily, per function: a session backed by a caching
    /// store rehydrates unchanged functions' analysis units instead of
    /// re-analyzing the whole program.
    ///
    /// # Errors
    ///
    /// [`ReproError::NotAFailureDump`] when the dump carries no failure.
    pub fn new(
        program: &'p Program,
        failure_dump: CoreDump,
        input: &[i64],
        options: ReproOptions,
    ) -> Result<Self, ReproError> {
        Self::open(program, failure_dump, input.to_vec(), options)
    }

    /// Opens a session with a pre-computed analysis (the
    /// [`Reproducer`](crate::Reproducer) path: one analysis, many
    /// sessions) — such a session does no analysis store traffic.
    pub(crate) fn from_parts(
        program: &'p Program,
        analysis: ProgramAnalysis,
        failure_dump: CoreDump,
        input: Vec<i64>,
        options: ReproOptions,
    ) -> Result<Self, ReproError> {
        let session = Self::open(program, failure_dump, input, options)?;
        let _ = session.analysis.set(analysis);
        Ok(session)
    }

    fn open(
        program: &'p Program,
        failure_dump: CoreDump,
        input: Vec<i64>,
        options: ReproOptions,
    ) -> Result<Self, ReproError> {
        let failure = failure_dump.failure().ok_or(ReproError::NotAFailureDump)?;
        let store = options.store.clone().unwrap_or_else(|| Arc::new(NullStore));
        Ok(ReproSession {
            program,
            analysis: OnceCell::new(),
            options,
            input,
            failure_dump,
            failure,
            cancel: CancelToken::new(),
            observer: Box::new(NullPhaseObserver),
            store,
            basis: Cell::new(None),
            program_fp: OnceCell::new(),
            func_fps: OnceCell::new(),
            unit_stats: Cell::new(FuncUnitStats::default()),
            artifacts: Artifacts::default(),
            hashes: std::array::from_fn(|_| Cell::new(None)),
            plan: RefCell::new(None),
            race: OnceCell::new(),
        })
    }

    /// The session's options.
    pub fn options(&self) -> &ReproOptions {
        &self.options
    }

    /// The failing input the session replays.
    pub fn input(&self) -> &[i64] {
        &self.input
    }

    /// The failure recorded in the dump.
    pub fn failure(&self) -> Failure {
        self.failure
    }

    /// A clone of the session's cancellation token. Firing it (from any
    /// thread) interrupts the in-flight phase — align/diff return
    /// [`ReproError::Cancelled`], the search returns a partial artifact.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attaches a progress observer (replacing any previous one). The
    /// observer must be [`Send`] because batch schedulers move sessions
    /// across executor threads; share state with the caller through an
    /// `Arc<Mutex<_>>` observer (see
    /// [`TimingLog`](crate::TimingLog)).
    pub fn set_observer(&mut self, observer: Box<dyn PhaseObserver + Send + 'p>) {
        self.observer = observer;
    }

    /// Attaches a content-addressed artifact store (replacing the one
    /// from [`ReproOptions::store`], or the default [`NullStore`]).
    /// Every phase whose [`PhaseKey`] hits the store is skipped and its
    /// artifact rehydrated.
    pub fn set_store(&mut self, store: Arc<dyn ArtifactStore>) {
        self.store = store;
    }

    /// The artifact store this session consults.
    pub fn store(&self) -> &Arc<dyn ArtifactStore> {
        &self.store
    }

    /// The session's identity hash: program fingerprint, input, failure
    /// dump, and result-relevant options, hashed on the wire encoding.
    /// Two sessions with equal bases produce bit-identical artifacts for
    /// every phase. Parallelism knobs and runtime attachments are
    /// deliberately excluded — results are independent of them (pinned
    /// by the parallel-equivalence suite), so a cache populated on an
    /// 8-core worker still hits on a 4-core one. Computed lazily.
    pub fn basis(&self) -> ContentHash {
        if let Some(b) = self.basis.get() {
            return b;
        }
        let b = session_basis(
            self.program_fingerprint(),
            &self.input,
            &self.failure_dump,
            &self.options,
        );
        self.basis.set(Some(b));
        b
    }

    /// The program's Merkle-root fingerprint, memoized per session —
    /// key derivations reuse it instead of rehashing the program.
    pub fn program_fingerprint(&self) -> ContentHash {
        *self
            .program_fp
            .get_or_init(|| program_fingerprint(self.program))
    }

    /// The per-function fingerprints (the Merkle leaves of
    /// [`ReproSession::program_fingerprint`]), memoized per session.
    pub fn function_fingerprints(&self) -> &[ContentHash] {
        self.func_fps.get_or_init(|| {
            self.program
                .funcs
                .iter()
                .map(function_fingerprint)
                .collect()
        })
    }

    /// Function-granular cache counters accumulated so far (see
    /// [`FuncUnitStats`]). Counters move when the session first resolves
    /// its dispatch plan and static analysis against a caching store.
    pub fn function_unit_stats(&self) -> FuncUnitStats {
        self.unit_stats.get()
    }

    fn bump_units(&self, f: impl FnOnce(&mut FuncUnitStats)) {
        let mut stats = self.unit_stats.get();
        f(&mut stats);
        self.unit_stats.set(stats);
    }

    /// The session's static analysis, resolved on first use. Seeded by
    /// the `Reproducer` path; otherwise assembled function by function —
    /// against a caching store each function's expensive analysis parts
    /// are fetched by the function-scoped key
    /// ([`PhaseKey::derive_for_function`] under [`Phase::Index`]) and
    /// only cache-missing functions are analyzed (and written back).
    pub(crate) fn analysis(&self) -> &ProgramAnalysis {
        self.analysis.get_or_init(|| {
            if !self.store.is_caching() {
                return ProgramAnalysis::analyze(self.program);
            }
            let funcs = self
                .program
                .funcs
                .iter()
                .enumerate()
                .map(|(i, func)| {
                    let key = PhaseKey::derive_for_function(
                        self.function_fingerprints()[i],
                        Phase::Index,
                    );
                    // Corrupted bytes or parts that don't fit the
                    // function are a miss, never an error.
                    let cached = self
                        .store
                        .get(&key)
                        .and_then(|bytes| FuncAnalysisArtifact::from_bytes(&bytes).ok())
                        .and_then(|artifact| artifact.rehydrate(func));
                    match cached {
                        Some(fa) => {
                            self.bump_units(|u| u.analysis_hits += 1);
                            fa
                        }
                        None => {
                            let started = Instant::now();
                            let fa = FuncAnalysis::new(func);
                            let artifact = FuncAnalysisArtifact::of(&fa, started.elapsed());
                            self.store.put(&key, &artifact.to_bytes());
                            self.bump_units(|u| u.analysis_computed += 1);
                            fa
                        }
                    }
                })
                .collect();
            ProgramAnalysis::from_funcs(funcs)
        })
    }

    /// The session's static race verdicts, resolved on first use —
    /// `None` unless [`ReproOptions::static_race`] is set and the fault
    /// plan is empty (an injected fault voids the analysis' execution
    /// model, so faulted sessions never prune). Per-function summaries
    /// rehydrate from cached [`FuncRaceArtifact`] units where the store
    /// has them; the whole-program composition is recomputed locally
    /// (it is cheap and program-global, so it cannot be a
    /// content-local unit).
    pub fn race_verdicts(&self) -> Option<&mcr_analysis::RaceVerdicts> {
        self.race
            .get_or_init(|| {
                if !self.options.static_race || !self.options.faults.is_empty() {
                    return None;
                }
                if !self.store.is_caching() {
                    return Some(RaceAnalysis::analyze(self.program));
                }
                let summaries = self
                    .program
                    .funcs
                    .iter()
                    .enumerate()
                    .map(|(i, func)| {
                        let key = PhaseKey::derive_for_function(
                            self.function_fingerprints()[i],
                            Phase::StaticRace,
                        );
                        // As with analysis units: corrupted bytes or a
                        // summary that does not fit the function are a
                        // miss, never an error.
                        let cached = self
                            .store
                            .get(&key)
                            .and_then(|bytes| FuncRaceArtifact::from_bytes(&bytes).ok())
                            .and_then(|artifact| artifact.rehydrate(func));
                        match cached {
                            Some(summary) => {
                                self.bump_units(|u| u.race_hits += 1);
                                summary
                            }
                            None => {
                                let started = Instant::now();
                                let summary = mcr_analysis::FuncRaceSummary::of(func);
                                let artifact =
                                    FuncRaceArtifact::of(summary.clone(), started.elapsed());
                                self.store.put(&key, &artifact.to_bytes());
                                self.bump_units(|u| u.race_computed += 1);
                                summary
                            }
                        }
                    })
                    .collect();
                Some(RaceAnalysis::compose(self.program, summaries))
            })
            .as_ref()
            .map(RaceAnalysis::verdicts)
    }

    /// The spill mode the diff replay should collect its trace with.
    ///
    /// [`mcr_slice::TraceSpill::segmented()`] asks for spilling without
    /// committing to a frame granularity, so for that value (and only
    /// that value — an explicit `Segmented { frame_events }` is
    /// honored verbatim, as is `InMemory`) the session re-derives the
    /// granularity from the attached store's measured per-phase
    /// residency histogram ([`crate::store::measured_frame_size`]):
    /// artifacts and spilled trace frames ride the same shipping and
    /// caching fabric, so the frame size that suits the measured
    /// artifact mix suits the spill. Residency-only, like the knob
    /// itself — never part of phase keys or checkpoints.
    pub fn effective_trace_spill(&self) -> mcr_slice::TraceSpill {
        let spill = self.options.trace_spill;
        if spill != mcr_slice::TraceSpill::segmented() || !self.store.is_caching() {
            return spill;
        }
        let stats = self.store.stats();
        if stats.mean_entry_size().is_none() {
            return spill;
        }
        mcr_slice::TraceSpill::segmented_sized(crate::store::measured_frame_size(&stats))
    }

    /// The latest completed phase, if any.
    pub fn completed(&self) -> Option<Phase> {
        if self.artifacts.search.is_some() {
            Some(Phase::Search)
        } else if self.artifacts.ranked.is_some() {
            Some(Phase::Rank)
        } else if self.artifacts.delta.is_some() {
            Some(Phase::Diff)
        } else if self.artifacts.align.is_some() {
            Some(Phase::Align)
        } else if self.artifacts.index.is_some() {
            Some(Phase::Index)
        } else {
            None
        }
    }

    /// The next phase [`ReproSession::run_to_end`] would execute, or
    /// `None` when the session is complete.
    pub fn next_phase(&self) -> Option<Phase> {
        match self.completed() {
            None => Some(Phase::Index),
            Some(p) => p.next(),
        }
    }

    /// Whether every phase has produced its artifact.
    pub fn is_complete(&self) -> bool {
        self.next_phase().is_none()
    }

    /// The index artifact, when the phase has run.
    pub fn index_artifact(&self) -> Option<&FailureIndexArtifact> {
        self.artifacts.index.as_ref()
    }

    /// The alignment artifact, when the phase has run.
    pub fn alignment_artifact(&self) -> Option<&AlignmentArtifact> {
        self.artifacts.align.as_ref()
    }

    /// The dump-delta artifact, when the phase has run.
    pub fn delta_artifact(&self) -> Option<&DumpDeltaArtifact> {
        self.artifacts.delta.as_ref()
    }

    /// The ranked-accesses artifact, when the phase has run.
    pub fn ranked_artifact(&self) -> Option<&RankedAccessesArtifact> {
        self.artifacts.ranked.as_ref()
    }

    /// The search artifact, when the phase has run.
    pub fn search_artifact(&self) -> Option<&SearchArtifact> {
        self.artifacts.search.as_ref()
    }

    pub(crate) fn emit(&mut self, event: PhaseEvent) {
        self.observer.on_event(&event);
    }

    /// Guards phase entry: even phases without an interruptible loop
    /// refuse to start once the token has fired. No event fires here —
    /// the phase never Started, so it needs no terminal event.
    fn check_entry(&mut self, phase: Phase) -> Result<(), ReproError> {
        if self.cancel.is_cancelled() {
            return Err(ReproError::Cancelled(phase));
        }
        Ok(())
    }

    /// The program's compiled [`DispatchPlan`], memoized on first use
    /// (the `Compile` pre-phase). With a caching store the plan is
    /// resolved *per function*: each function's serialized
    /// [`FunctionPlan`] unit lives under the function-scoped key
    /// [`PhaseKey::derive_for_function`]`(function_fingerprint,
    /// Phase::Compile)` — so a one-function edit recompiles exactly one
    /// unit, and every program (revision or neighbor) containing an
    /// identical function shares its entry. The rehydrated/compiled
    /// units are assembled into the flat plan, which is bit-identical
    /// to a direct whole-program compile (pinned by the
    /// perf-equivalence suite). The pre-phase emits no [`PhaseEvent`]s:
    /// it is infallible, micro-seconds cheap, and surfaces in
    /// [`StoreStats::per_phase`](crate::StoreStats::per_phase) and
    /// [`FuncUnitStats`].
    pub(crate) fn ensure_plan(&self) -> Arc<DispatchPlan> {
        if let Some(plan) = self.plan.borrow().as_ref() {
            return Arc::clone(plan);
        }
        let plan = Arc::new(if self.store.is_caching() {
            let units: Vec<FunctionPlan> = self
                .program
                .funcs
                .iter()
                .enumerate()
                .map(|(i, func)| {
                    let key = PhaseKey::derive_for_function(
                        self.function_fingerprints()[i],
                        Phase::Compile,
                    );
                    // A corrupted or layout-incompatible cached unit is
                    // a miss, not an error; `matches` guards against a
                    // fingerprint collision handing us a unit shaped
                    // for a different function.
                    let cached = self
                        .store
                        .get(&key)
                        .and_then(|bytes| CompiledPlanArtifact::from_bytes(&bytes).ok())
                        .and_then(|artifact| FunctionPlan::from_bytes(&artifact.plan_bytes))
                        .filter(|unit| unit.matches(func));
                    match cached {
                        Some(unit) => {
                            self.bump_units(|u| u.compile_hits += 1);
                            unit
                        }
                        None => {
                            let started = Instant::now();
                            let unit = FunctionPlan::compile(func);
                            let artifact = CompiledPlanArtifact {
                                plan_bytes: unit.to_bytes(),
                                elapsed: started.elapsed(),
                            };
                            self.store.put(&key, &artifact.to_bytes());
                            self.bump_units(|u| u.compile_computed += 1);
                            unit
                        }
                    }
                })
                .collect();
            DispatchPlan::assemble(&units)
        } else {
            DispatchPlan::compile(self.program)
        });
        *self.plan.borrow_mut() = Some(Arc::clone(&plan));
        plan
    }

    /// A fresh [`Vm`] on the session's program and input, with the
    /// session's dispatch plan attached. Every phase that executes the
    /// program builds its VMs here.
    pub(crate) fn new_vm(&self) -> Vm<'p> {
        Vm::new(self.program, &self.input)
            .with_plan(self.ensure_plan())
            .with_mem_model(self.options.mem_model)
            .with_faults(&self.options.faults)
    }

    /// The content hash of `phase`'s encoded artifact, once produced
    /// (`None` while the artifact is missing). Computed lazily — a
    /// session that never consults keys never encodes artifacts just to
    /// hash them.
    pub fn artifact_hash(&self, phase: Phase) -> Option<ContentHash> {
        if phase == Phase::Compile {
            // The plan is not a session artifact (it is keyed by
            // program fingerprint alone, not chained off the basis).
            return None;
        }
        let cell = &self.hashes[phase.index()];
        if let Some(h) = cell.get() {
            return Some(h);
        }
        let bytes = self.encode_artifact(phase)?;
        let h = ContentHash::of(&bytes);
        cell.set(Some(h));
        Some(h)
    }

    /// The wire encoding of `phase`'s artifact, when present.
    fn encode_artifact(&self, phase: Phase) -> Option<Vec<u8>> {
        Some(match phase {
            Phase::Index => self.artifacts.index.as_ref()?.to_bytes(),
            Phase::Align => self.artifacts.align.as_ref()?.to_bytes(),
            Phase::Diff => self.artifacts.delta.as_ref()?.to_bytes(),
            Phase::Rank => self.artifacts.ranked.as_ref()?.to_bytes(),
            Phase::Search => self.artifacts.search.as_ref()?.to_bytes(),
            Phase::Compile | Phase::StaticRace => return None,
        })
    }

    /// The content-addressed key identifying `phase`'s work unit:
    /// derived from the session [`basis`](ReproSession::basis) and the
    /// upstream artifact's hash. `None` until the upstream artifact
    /// exists (the key cannot be known before then).
    pub fn phase_key(&self, phase: Phase) -> Option<PhaseKey> {
        if phase == Phase::Compile {
            // The compile pre-phase has no single session-level key:
            // its cache units are per function (see
            // [`ReproSession::compile_unit_keys`]).
            return None;
        }
        let upstream = match phase.prev() {
            None => None,
            Some(p) => Some(self.artifact_hash(p)?),
        };
        Some(PhaseKey::derive(self.basis(), phase, upstream))
    }

    /// The function-scoped store keys of the program's compile units,
    /// in [`mcr_lang::FuncId`] order. Deliberately *not* chained off
    /// the session basis: each unit depends on its function alone, so
    /// every job — and every program — containing an identical function
    /// shares one entry.
    pub fn compile_unit_keys(&self) -> Vec<PhaseKey> {
        self.function_fingerprints()
            .iter()
            .map(|&fp| PhaseKey::derive_for_function(fp, Phase::Compile))
            .collect()
    }

    /// The function-scoped store keys of the program's static-analysis
    /// units, in [`mcr_lang::FuncId`] order.
    pub fn analysis_unit_keys(&self) -> Vec<PhaseKey> {
        self.function_fingerprints()
            .iter()
            .map(|&fp| PhaseKey::derive_for_function(fp, Phase::Index))
            .collect()
    }

    /// The key of the next phase to execute — what a fleet scheduler
    /// single-flights on. `None` when the session is complete.
    pub fn next_phase_key(&self) -> Option<PhaseKey> {
        self.phase_key(self.next_phase()?)
    }

    /// The generic phase driver: runs prerequisites, consults the
    /// artifact store under the phase's content-addressed key
    /// (rehydrating a hit, observed as [`PhaseEvent::CacheHit`]), and
    /// otherwise computes the phase and writes its artifact back.
    /// Re-running a completed phase returns the stored artifact.
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    pub fn run<P: PipelinePhase>(&mut self) -> Result<&P::Artifact, ReproError> {
        if let Some(prev) = P::PHASE.prev() {
            self.run_phase(prev)?;
        }
        if P::artifact(self).is_none() {
            if P::GUARDED_ENTRY {
                self.check_entry(P::PHASE)?;
            }
            // The compile pre-phase: resolve the dispatch plan before
            // the phase key is consulted, so warm sessions still touch
            // (and account for) the shared plan entry.
            self.ensure_plan();
            // Keys and artifact hashes exist only to address the store:
            // with a non-caching store (the default NullStore) the whole
            // machinery is skipped and the phase runs exactly as the
            // pre-caching pipeline did.
            let key = self
                .store
                .is_caching()
                .then(|| self.phase_key(P::PHASE).expect("prerequisites just ran"));
            // A corrupted store entry is treated as a miss, never an
            // error: the store is a cache, recomputing is always sound.
            let cached = key
                .as_ref()
                .and_then(|k| self.store.get(k))
                .and_then(|bytes| P::decode(&bytes).ok().map(|a| (a, ContentHash::of(&bytes))));
            match cached {
                Some((artifact, hash)) => {
                    self.hashes[P::PHASE.index()].set(Some(hash));
                    P::install(self, artifact);
                    self.emit(PhaseEvent::CacheHit { phase: P::PHASE });
                }
                None => {
                    let artifact = P::compute(self)?;
                    if let Some(key) = key {
                        let bytes = P::encode(&artifact);
                        if P::cacheable(&artifact) {
                            self.store.put(&key, &bytes);
                        }
                        self.hashes[P::PHASE.index()].set(Some(ContentHash::of(&bytes)));
                    }
                    P::install(self, artifact);
                }
            }
        }
        Ok(P::artifact(self).expect("just installed"))
    }

    /// Dynamic-dispatch form of [`ReproSession::run`], for drivers that
    /// hold a [`Phase`] value (the fleet scheduler's wave loop).
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    pub fn run_phase(&mut self, phase: Phase) -> Result<(), ReproError> {
        match phase {
            Phase::Index => self.run::<IndexPhase>().map(drop),
            Phase::Align => self.run::<AlignPhase>().map(drop),
            Phase::Diff => self.run::<DiffPhase>().map(drop),
            Phase::Rank => self.run::<RankPhase>().map(drop),
            Phase::Search => self.run::<SearchPhase>().map(drop),
            // The pre-phases are not independently runnable: resolving
            // the plan (or the race summaries) is a side effect of
            // running a real phase that needs them.
            Phase::Compile => {
                self.ensure_plan();
                Ok(())
            }
            Phase::StaticRace => {
                self.race_verdicts();
                Ok(())
            }
        }
    }

    /// Phase 1: reverse engineering the failure's execution index
    /// (§3.2, Algorithm 1). Under
    /// [`AlignMode::InstructionCount`] the artifact carries no index.
    ///
    /// # Errors
    ///
    /// [`ReproError::Reverse`] when the index cannot be reconstructed,
    /// [`ReproError::Cancelled`] when the token fired first.
    pub fn run_index(&mut self) -> Result<&FailureIndexArtifact, ReproError> {
        self.run::<IndexPhase>()
    }

    /// Phase 2: the deterministic passing run — aligned-point location
    /// (§3.3, Fig. 7) plus the sync/shared-access log the search needs.
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_index`], plus
    /// [`ReproError::NoSuchThread`], [`ReproError::Cancelled`] and
    /// [`ReproError::BudgetExhausted`].
    pub fn run_align(&mut self) -> Result<&AlignmentArtifact, ReproError> {
        self.run::<AlignPhase>()
    }

    /// Phase 3: replay to the aligned point, capture the aligned dump
    /// and the dependence trace, and compare the dumps to find the
    /// critical shared variables (§4).
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_align`], plus [`ReproError::Codec`]
    /// when a dump fails to round-trip through the codec.
    pub fn run_diff(&mut self) -> Result<&DumpDeltaArtifact, ReproError> {
        self.run::<DiffPhase>()
    }

    /// Phase 4: prioritize the CSV accesses of the dependence trace
    /// (temporal closeness or dependence distance, per
    /// [`ReproOptions::strategy`](crate::ReproOptions::strategy)).
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_diff`].
    pub fn run_rank(&mut self) -> Result<&RankedAccessesArtifact, ReproError> {
        self.run::<RankPhase>()
    }

    /// Phase 5: the directed schedule search (§5, Algorithm 2).
    ///
    /// Cancellation mid-search does *not* error: the phase completes
    /// with a partial [`SearchArtifact`] whose result carries
    /// `cancelled = true`, so [`ReproSession::report`] still yields a
    /// (partial) report.
    ///
    /// # Errors
    ///
    /// Those of [`ReproSession::run_rank`].
    pub fn run_search(&mut self) -> Result<&SearchArtifact, ReproError> {
        self.run::<SearchPhase>()
    }

    /// Runs every remaining phase and returns the final report.
    ///
    /// # Errors
    ///
    /// See [`ReproError`].
    pub fn run_to_end(&mut self) -> Result<ReproReport, ReproError> {
        self.run_search()?;
        Ok(self.report().expect("all phases complete"))
    }

    /// Assembles the [`ReproReport`] once every phase has run (`None`
    /// before that).
    pub fn report(&self) -> Option<ReproReport> {
        let index = self.artifacts.index.as_ref()?;
        let align = self.artifacts.align.as_ref()?;
        let delta = self.artifacts.delta.as_ref()?;
        let ranked = self.artifacts.ranked.as_ref()?;
        let search = self.artifacts.search.as_ref()?;
        Some(ReproReport {
            index: index.index.clone(),
            alignment: align.alignment,
            failure_dump_bytes: delta.failure_dump_bytes,
            aligned_dump_bytes: delta.aligned_dump_bytes,
            vars: delta.vars,
            diffs: delta.diffs,
            shared: delta.shared,
            csv_paths: delta.csv_paths.clone(),
            csv_locs: delta.csv_locs.clone(),
            search: search.result.clone(),
            timings: ReproTimings {
                reverse: index.elapsed,
                passing_run: align.elapsed,
                replay: delta.replay_elapsed,
                dump_parse: delta.parse_elapsed,
                diff: delta.diff_elapsed,
                slicing: ranked.elapsed,
                search: search.elapsed,
            },
            deterministic_repro: align.deterministic_repro,
        })
    }

    /// Serializes the whole session — options, input, failure dump, and
    /// every artifact produced so far — to bytes. The compiled program
    /// is *not* included; supply it again to [`ReproSession::resume`].
    /// (The artifact store and executor handle are process-local
    /// runtime attachments and are likewise not serialized.)
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u8(VERSION);
        write_options(&mut w, &self.options);
        w.uvarint(self.input.len() as u64);
        for v in &self.input {
            w.ivarint(*v);
        }
        w.bytes(&mcr_dump::encode(&self.failure_dump));
        write_artifact(
            &mut w,
            &self.artifacts.index,
            FailureIndexArtifact::to_bytes,
        );
        write_artifact(&mut w, &self.artifacts.align, AlignmentArtifact::to_bytes);
        write_artifact(&mut w, &self.artifacts.delta, DumpDeltaArtifact::to_bytes);
        write_artifact(
            &mut w,
            &self.artifacts.ranked,
            RankedAccessesArtifact::to_bytes,
        );
        write_artifact(&mut w, &self.artifacts.search, SearchArtifact::to_bytes);
        w.into_bytes()
    }

    /// Restores a session from [`ReproSession::checkpoint`] bytes in a
    /// fresh process: only the compiled program is supplied externally
    /// (the static analysis is re-resolved lazily — per function, from
    /// the store when it caches). The restored session
    /// continues from the first phase whose artifact is missing and
    /// produces the same report an uninterrupted run would.
    ///
    /// # Errors
    ///
    /// [`ReproError::Codec`] on corrupted or truncated bytes,
    /// [`ReproError::NotAFailureDump`] when the embedded dump carries no
    /// failure.
    pub fn resume(program: &'p Program, bytes: &[u8]) -> Result<Self, ReproError> {
        let mut r = Reader::new(bytes);
        r.expect_magic(MAGIC)?;
        let version = r.u8()?;
        if version != VERSION {
            return Err(ReproError::Codec(DecodeError {
                msg: format!("unsupported session version {version}"),
                offset: r.pos(),
            }));
        }
        let options = read_options(&mut r)?;
        let n = r.len("input")?;
        let mut input = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            input.push(r.ivarint()?);
        }
        let failure_dump = mcr_dump::decode(r.bytes()?)?;
        let index = read_artifact(&mut r, FailureIndexArtifact::from_bytes)?;
        let align = read_artifact(&mut r, AlignmentArtifact::from_bytes)?;
        let delta = read_artifact(&mut r, DumpDeltaArtifact::from_bytes)?;
        let ranked = read_artifact(&mut r, RankedAccessesArtifact::from_bytes)?;
        let search = read_artifact(&mut r, SearchArtifact::from_bytes)?;
        r.finish()?;
        let mut session = Self::open(program, failure_dump, input, options)?;
        session.artifacts = Artifacts {
            index: index.as_ref().map(|(a, _)| a.clone()),
            align: align.as_ref().map(|(a, _)| a.clone()),
            delta: delta.as_ref().map(|(a, _)| a.clone()),
            ranked: ranked.as_ref().map(|(a, _)| a.clone()),
            search: search.as_ref().map(|(a, _)| a.clone()),
        };
        session.hashes = [
            Cell::new(index.map(|(_, h)| h)),
            Cell::new(align.map(|(_, h)| h)),
            Cell::new(delta.map(|(_, h)| h)),
            Cell::new(ranked.map(|(_, h)| h)),
            Cell::new(search.map(|(_, h)| h)),
        ];
        Ok(session)
    }
}

/// Hashes the session identity — program fingerprint (memoized by the
/// caller), failing input, failure dump, and result-relevant options —
/// on the wire encoding.
fn session_basis(
    program_fp: ContentHash,
    input: &[i64],
    failure_dump: &CoreDump,
    options: &ReproOptions,
) -> ContentHash {
    let mut w = Writer::new();
    w.uvarint(input.len() as u64);
    for v in input {
        w.ivarint(*v);
    }
    write_key_options(&mut w, options);
    let mut h = ContentHasher::new();
    h.update(b"MCRB1");
    h.update(&program_fp.to_le_bytes());
    h.update(&mcr_dump::encode(failure_dump));
    h.update(&w.into_bytes());
    h.finish128()
}

/// The options bytes that enter a session's key basis: like
/// [`write_options`] but *excluding* the worker counts
/// (`ReproOptions::parallelism`, `SearchConfig::parallelism`). The
/// parallel-equivalence suite pins that results are independent of
/// worker count, so folding it into keys would only break cache sharing
/// between machines with different core counts (a shipped
/// [`BytesStore`](crate::BytesStore) snapshot would silently never
/// hit). Checkpoints still serialize the full options via
/// [`write_options`].
/// Serializes the execution environment (memory model + fault plan).
/// Shared between the checkpoint codec and the key basis: both must see
/// it — a schedule found under TSO or with injected faults is only
/// meaningful in that same environment.
fn write_env(w: &mut Writer, o: &ReproOptions) {
    match o.mem_model {
        MemModel::Sc => w.u8(0),
        MemModel::Tso { buffer_cap } => {
            w.u8(1);
            w.uvarint(buffer_cap as u64);
        }
    }
    w.uvarint(o.faults.len() as u64);
    for f in &o.faults {
        w.u8(match f.kind {
            FaultKind::AllocFail => 0,
            FaultKind::LockTimeout => 1,
        });
        w.uvarint(f.tid.0 as u64);
        w.uvarint(f.nth as u64);
    }
}

fn read_env(r: &mut Reader<'_>) -> Result<(MemModel, Vec<FaultSpec>), DecodeError> {
    let mem_model = match r.u8()? {
        0 => MemModel::Sc,
        1 => MemModel::Tso {
            buffer_cap: r.uvarint()? as u32,
        },
        t => return r.err(format!("bad memory model tag {t}")),
    };
    let n = r.len("faults")?;
    let mut faults = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let kind = match r.u8()? {
            0 => FaultKind::AllocFail,
            1 => FaultKind::LockTimeout,
            t => return r.err(format!("bad fault kind tag {t}")),
        };
        let tid = ThreadId(r.uvarint()? as u32);
        let nth = r.uvarint()? as u32;
        faults.push(FaultSpec { kind, tid, nth });
    }
    Ok((mem_model, faults))
}

fn write_key_options(w: &mut Writer, o: &ReproOptions) {
    write_env(w, o);
    w.bool(o.static_race);
    w.u8(match o.strategy {
        Strategy::Temporal => 0,
        Strategy::Dependence => 1,
    });
    w.u8(match o.align_mode {
        AlignMode::ExecutionIndex => 0,
        AlignMode::InstructionCount => 1,
    });
    w.u8(match o.algorithm {
        Algorithm::Chess => 0,
        Algorithm::ChessX => 1,
    });
    w.uvarint(o.search.preemption_bound as u64);
    w.uvarint(o.search.max_tries);
    w.opt_duration(o.search.time_budget);
    w.uvarint(o.search.max_steps);
    w.uvarint(o.search.pair_pool as u64);
    w.uvarint(o.trace_window as u64);
    w.uvarint(o.max_steps);
    w.uvarint(o.limits.max_depth as u64);
    w.uvarint(o.limits.max_paths as u64);
    for phase in crate::observe::PHASES {
        match o.budgets.get(phase) {
            None => w.bool(false),
            Some(b) => {
                w.bool(true);
                w.opt_uvarint(b.max_steps);
                w.opt_duration(b.wall);
            }
        }
    }
}

fn write_artifact<T>(w: &mut Writer, artifact: &Option<T>, to_bytes: impl Fn(&T) -> Vec<u8>) {
    match artifact {
        None => w.bool(false),
        Some(a) => {
            w.bool(true);
            w.bytes(&to_bytes(a));
        }
    }
}

/// Reads an optional artifact, returning it together with the content
/// hash of its encoded bytes (so a resumed session can derive phase
/// keys without re-encoding).
fn read_artifact<T>(
    r: &mut Reader<'_>,
    from_bytes: impl Fn(&[u8]) -> Result<T, DecodeError>,
) -> Result<Option<(T, ContentHash)>, DecodeError> {
    Ok(if r.bool()? {
        let bytes = r.bytes()?;
        Some((from_bytes(bytes)?, ContentHash::of(bytes)))
    } else {
        None
    })
}

/// Serializes the options' *semantic* knobs (runtime attachments — the
/// cancel token, artifact store, and executor handle — are
/// process-local and excluded; they also do not contribute to session
/// bases, so attaching a store never changes a phase key). The
/// `trace_spill` residency knob is likewise excluded from both codecs:
/// it never changes the collected trace, only where the window lives
/// while it is gathered, so resumed sessions default to
/// `TraceSpill::InMemory`.
fn write_options(w: &mut Writer, o: &ReproOptions) {
    write_env(w, o);
    w.bool(o.static_race);
    w.u8(match o.strategy {
        Strategy::Temporal => 0,
        Strategy::Dependence => 1,
    });
    w.u8(match o.align_mode {
        AlignMode::ExecutionIndex => 0,
        AlignMode::InstructionCount => 1,
    });
    w.u8(match o.algorithm {
        Algorithm::Chess => 0,
        Algorithm::ChessX => 1,
    });
    w.uvarint(o.search.preemption_bound as u64);
    w.uvarint(o.search.max_tries);
    w.opt_duration(o.search.time_budget);
    w.uvarint(o.search.max_steps);
    w.uvarint(o.search.pair_pool as u64);
    w.uvarint(o.search.parallelism as u64);
    w.uvarint(o.trace_window as u64);
    w.uvarint(o.max_steps);
    w.uvarint(o.limits.max_depth as u64);
    w.uvarint(o.limits.max_paths as u64);
    w.uvarint(o.parallelism as u64);
    for phase in crate::observe::PHASES {
        match o.budgets.get(phase) {
            None => w.bool(false),
            Some(b) => {
                w.bool(true);
                w.opt_uvarint(b.max_steps);
                w.opt_duration(b.wall);
            }
        }
    }
}

fn read_options(r: &mut Reader<'_>) -> Result<ReproOptions, DecodeError> {
    let (mem_model, faults) = read_env(r)?;
    let static_race = r.bool()?;
    let strategy = match r.u8()? {
        0 => Strategy::Temporal,
        1 => Strategy::Dependence,
        t => return r.err(format!("bad strategy tag {t}")),
    };
    let align_mode = match r.u8()? {
        0 => AlignMode::ExecutionIndex,
        1 => AlignMode::InstructionCount,
        t => return r.err(format!("bad align mode tag {t}")),
    };
    let algorithm = match r.u8()? {
        0 => Algorithm::Chess,
        1 => Algorithm::ChessX,
        t => return r.err(format!("bad algorithm tag {t}")),
    };
    let search = SearchConfig {
        preemption_bound: r.uvarint()? as usize,
        max_tries: r.uvarint()?,
        time_budget: r.opt_duration()?,
        max_steps: r.uvarint()?,
        pair_pool: r.uvarint()? as usize,
        parallelism: r.uvarint()? as usize,
        // The token is process-local state; a resumed session gets a
        // fresh one. Likewise the executor handle.
        cancel: CancelToken::new(),
        pool: None,
    };
    let trace_window = r.uvarint()? as usize;
    let max_steps = r.uvarint()?;
    let limits = TraverseLimits {
        max_depth: r.uvarint()? as usize,
        max_paths: r.uvarint()? as usize,
    };
    let parallelism = r.uvarint()? as usize;
    let mut budgets = PhaseBudgets::default();
    for phase in crate::observe::PHASES {
        if r.bool()? {
            budgets.set(
                phase,
                PhaseBudget {
                    max_steps: r.opt_uvarint()?,
                    wall: r.opt_duration()?,
                },
            );
        }
    }
    Ok(ReproOptions {
        strategy,
        align_mode,
        algorithm,
        search,
        trace_window,
        trace_spill: mcr_slice::TraceSpill::InMemory,
        max_steps,
        limits,
        parallelism,
        budgets,
        store: None,
        pool: None,
        mem_model,
        faults,
        static_race,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TimingLog;
    use crate::store::MemoryStore;
    use crate::stress::find_failure;
    use std::sync::Mutex;
    use std::time::Duration;

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    fn fig1_session(p: &Program, options: ReproOptions) -> ReproSession<'_> {
        let input = [0i64, 1];
        let sf = find_failure(p, &input, 0..200_000, 1_000_000).expect("stress exposes");
        ReproSession::new(p, sf.dump, &input, options).unwrap()
    }

    #[test]
    fn phases_run_one_at_a_time() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        assert_eq!(s.completed(), None);
        assert_eq!(s.next_phase(), Some(Phase::Index));
        s.run_index().unwrap();
        assert_eq!(s.completed(), Some(Phase::Index));
        s.run_align().unwrap();
        assert_eq!(s.completed(), Some(Phase::Align));
        s.run_diff().unwrap();
        s.run_rank().unwrap();
        assert_eq!(s.next_phase(), Some(Phase::Search));
        assert!(s.report().is_none(), "no report before the search");
        s.run_search().unwrap();
        assert!(s.is_complete());
        let report = s.report().unwrap();
        assert!(report.search.reproduced);
    }

    #[test]
    fn later_phases_pull_in_prerequisites() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        // Jumping straight to the diff phase runs index + align first.
        s.run_diff().unwrap();
        assert_eq!(s.completed(), Some(Phase::Diff));
        assert!(s.index_artifact().is_some());
        assert!(s.alignment_artifact().is_some());
    }

    #[test]
    fn observer_sees_all_phases_in_order() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        let log = Arc::new(Mutex::new(TimingLog::new()));
        s.set_observer(Box::new(Arc::clone(&log)));
        s.run_to_end().unwrap();
        let finished: Vec<Phase> = log
            .lock()
            .unwrap()
            .finished()
            .iter()
            .map(|(phase, _)| *phase)
            .collect();
        assert_eq!(finished, crate::observe::PHASES);
        // The diff phase's sub-stages were reported too.
        let stages: Vec<&str> = log
            .lock()
            .unwrap()
            .events
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::Stage { stage, .. } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(stages, ["replay", "dump-parse", "diff"]);
    }

    #[test]
    fn cancelled_session_refuses_phase_entry() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let mut s = fig1_session(&p, ReproOptions::default());
        s.cancel_token().cancel();
        assert!(matches!(
            s.run_index(),
            Err(ReproError::Cancelled(Phase::Index))
        ));
    }

    #[test]
    fn align_wall_budget_interrupts() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let options = ReproOptions::builder()
            .budget(Phase::Align, PhaseBudget::wall(Duration::ZERO))
            .build();
        let mut s = fig1_session(&p, options);
        assert!(matches!(
            s.run_align(),
            Err(ReproError::BudgetExhausted(Phase::Align))
        ));
        // The index artifact survived; lifting the budget resumes.
        assert!(s.index_artifact().is_some());
    }

    #[test]
    fn warm_session_rehydrates_every_phase_from_the_store() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let input = [0i64, 1];
        let sf = find_failure(&p, &input, 0..200_000, 1_000_000).expect("stress exposes");
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());

        let mut cold =
            ReproSession::new(&p, sf.dump.clone(), &input, ReproOptions::default()).unwrap();
        cold.set_store(Arc::clone(&store));
        let cold_report = cold.run_to_end().unwrap();
        // 5 phase artifacts + one compile unit and one analysis unit
        // per function (FIG1 has 4 functions).
        let funcs = p.funcs.len() as u64;
        assert_eq!(
            store.stats().inserts,
            5 + 2 * funcs,
            "every phase cached, plus per-function compile/analysis units"
        );
        assert_eq!(
            cold.function_unit_stats(),
            FuncUnitStats {
                compile_hits: 0,
                compile_computed: funcs,
                analysis_hits: 0,
                analysis_computed: funcs,
                race_hits: 0,
                race_computed: 0,
            }
        );

        let mut warm =
            ReproSession::new(&p, sf.dump.clone(), &input, ReproOptions::default()).unwrap();
        warm.set_store(Arc::clone(&store));
        let log = Arc::new(Mutex::new(TimingLog::new()));
        warm.set_observer(Box::new(Arc::clone(&log)));
        let warm_report = warm.run_to_end().unwrap();

        // All five phases were cache hits; nothing Started.
        assert_eq!(log.lock().unwrap().cache_hits(), crate::observe::PHASES);
        assert!(log.lock().unwrap().finished().is_empty());
        // Every per-function compile unit rehydrated; the analysis was
        // never even resolved — all phases hit, so nothing needed it.
        assert_eq!(
            warm.function_unit_stats(),
            FuncUnitStats {
                compile_hits: funcs,
                compile_computed: 0,
                analysis_hits: 0,
                analysis_computed: 0,
                race_hits: 0,
                race_computed: 0,
            }
        );
        assert!((warm.function_unit_stats().hit_rate() - 1.0).abs() < 1e-9);
        // The rehydrated report is bit-identical, *including* timings
        // (they are part of the cached artifacts).
        assert_eq!(cold_report, warm_report);
        // And both sessions derived identical keys.
        assert_eq!(cold.basis(), warm.basis());
        for phase in crate::observe::PHASES {
            assert_eq!(cold.phase_key(phase), warm.phase_key(phase));
        }
    }

    #[test]
    fn phase_keys_differ_across_inputs_and_options() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let input = [0i64, 1];
        let sf = find_failure(&p, &input, 0..200_000, 1_000_000).expect("stress exposes");
        let a = ReproSession::new(&p, sf.dump.clone(), &input, ReproOptions::default()).unwrap();
        let b =
            ReproSession::new(&p, sf.dump.clone(), &[0, 1, 2], ReproOptions::default()).unwrap();
        let c = ReproSession::new(
            &p,
            sf.dump.clone(),
            &input,
            ReproOptions::builder().trace_window(7).build(),
        )
        .unwrap();
        assert_ne!(a.basis(), b.basis(), "input is part of the key basis");
        assert_ne!(a.basis(), c.basis(), "options are part of the key basis");
        // Worker counts are NOT part of the basis: a cache populated on
        // one machine must hit on another with different cores.
        let d = ReproSession::new(
            &p,
            sf.dump.clone(),
            &input,
            ReproOptions::builder().parallelism(64).build(),
        )
        .unwrap();
        assert_eq!(a.basis(), d.basis(), "parallelism must not affect keys");
        assert_ne!(
            a.phase_key(Phase::Index),
            b.phase_key(Phase::Index),
            "index keys diverge with the basis"
        );
        // Keys of later phases are unknown before their upstream exists.
        assert_eq!(a.phase_key(Phase::Align), None);
        assert_eq!(a.next_phase_key().unwrap().phase, Phase::Index);
    }

    #[test]
    fn partial_search_results_are_not_cached() {
        let p = mcr_lang::compile(FIG1).unwrap();
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let mut s = fig1_session(&p, ReproOptions::default());
        s.set_store(Arc::clone(&store));
        s.run_rank().unwrap();
        // Cancel before the search: it completes with a partial result.
        s.cancel_token().cancel();
        let artifact = s.run_search().unwrap();
        assert!(artifact.result.cancelled);
        // Rank and everything before it (including the per-function
        // compile/analysis units) were cached; the search was not.
        assert_eq!(store.stats().inserts, 4 + 2 * p.funcs.len() as u64);
    }

    #[test]
    fn one_function_edit_recompiles_exactly_its_units() {
        let p1 = mcr_lang::compile(FIG1).unwrap();
        // Edit only `T2`: same statement count and behavior (the dump
        // stays valid), different body content.
        let src2 = FIG1.replace("fn T2() { x = 0; }", "fn T2() { x = 0 + 0; }");
        let p2 = mcr_lang::compile(&src2).unwrap();
        let input = [0i64, 1];
        let sf = find_failure(&p1, &input, 0..200_000, 1_000_000).expect("stress exposes");
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());

        let cold =
            ReproSession::new(&p1, sf.dump.clone(), &input, ReproOptions::default()).unwrap();
        let mut cold = cold;
        cold.set_store(Arc::clone(&store));
        cold.ensure_plan();
        cold.analysis();

        let mut warm =
            ReproSession::new(&p2, sf.dump.clone(), &input, ReproOptions::default()).unwrap();
        warm.set_store(Arc::clone(&store));
        warm.ensure_plan();
        warm.analysis();
        let funcs = p1.funcs.len() as u64;
        assert_eq!(
            warm.function_unit_stats(),
            FuncUnitStats {
                compile_hits: funcs - 1,
                compile_computed: 1,
                analysis_hits: funcs - 1,
                analysis_computed: 1,
                race_hits: 0,
                race_computed: 0,
            },
            "exactly the edited function's units recompute"
        );
        // Only the edited function's fingerprints moved.
        let moved: Vec<usize> = cold
            .function_fingerprints()
            .iter()
            .zip(warm.function_fingerprints())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(moved, vec![2], "T2 is funcs[2]");
        assert_ne!(cold.program_fingerprint(), warm.program_fingerprint());
    }
}
