//! # mcr-core — core-dump-driven concurrency bug reproduction
//!
//! The end-to-end implementation of *Analyzing Multicore Dumps to
//! Facilitate Concurrency Bug Reproduction* (ASPLOS 2010): given a
//! failure core dump from an uncontrolled multicore-style run and the
//! failing input, [`Reproducer::reproduce`] reverse-engineers the
//! failure's execution index, locates the aligned point in a
//! deterministic re-execution, compares core dumps to find the critical
//! shared variables, prioritizes their accesses, and runs a directed
//! CHESS-style search that emits a failure-inducing schedule.
//!
//! ```no_run
//! use mcr_core::{find_failure, ReproOptions, Reproducer};
//!
//! let program = mcr_lang::compile(r#"
//!     global x: int;
//!     lock l;
//!     fn t1() { acquire l; x = 1; release l; assert(x == 1); }
//!     fn t2() { x = 0; }
//!     fn main() { spawn t1(); spawn t2(); }
//! "#)?;
//! let input: Vec<i64> = vec![];
//! // 1. Stress until the Heisenbug produces a failure core dump.
//! let failure = mcr_core::find_failure(&program, &input, 0..1_000_000, 1_000_000)
//!     .expect("bug exposed");
//! // 2-6. Reverse-engineer, align, diff, prioritize, search.
//! let reproducer = Reproducer::new(&program, ReproOptions::default());
//! let report = reproducer.reproduce(&failure.dump, &input).unwrap();
//! assert!(report.search.reproduced);
//! # Ok::<(), mcr_lang::LangError>(())
//! ```
//!
//! (See the repository `examples/` for complete, runnable walkthroughs.)

#![warn(missing_docs)]

pub mod pipeline;
pub mod stress;

pub use pipeline::{
    has_sync_points, AlignMode, ReproError, ReproOptions, ReproReport, ReproTimings, Reproducer,
};
pub use stress::{find_failure, find_failure_par, passes_deterministically, StressFailure};
