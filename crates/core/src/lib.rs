//! # mcr-core — core-dump-driven concurrency bug reproduction
//!
//! The end-to-end implementation of *Analyzing Multicore Dumps to
//! Facilitate Concurrency Bug Reproduction* (ASPLOS 2010): given a
//! failure core dump from an uncontrolled multicore-style run and the
//! failing input, the pipeline reverse-engineers the failure's execution
//! index, locates the aligned point in a deterministic re-execution,
//! compares core dumps to find the critical shared variables,
//! prioritizes their accesses, and runs a directed CHESS-style search
//! that emits a failure-inducing schedule.
//!
//! Two entry points drive it:
//!
//! * [`Reproducer::reproduce`] — one blocking call, dump in, report out;
//! * [`ReproSession`] — the same pipeline as a staged, resumable state
//!   machine whose phases produce serializable artifacts, with progress
//!   observation ([`PhaseObserver`]), cancellation
//!   ([`CancelToken`]), per-phase budgets ([`PhaseBudget`]), and
//!   checkpoint/resume across processes.
//!
//! The five phases are implementations of the generic [`PipelinePhase`]
//! trait and the session is a thin driver over them; each phase unit is
//! identified by a content-addressed [`PhaseKey`], so attaching an
//! [`ArtifactStore`] (e.g. an in-memory [`MemoryStore`] LRU or a
//! persistable [`BytesStore`]) makes sessions skip any phase whose key
//! was already computed — by themselves, by an earlier run, or by
//! another session of a batch fleet (see the `mcr-batch` crate).
//!
//! ```no_run
//! use mcr_core::{find_failure, ReproOptions, Reproducer};
//!
//! let program = mcr_lang::compile(r#"
//!     global x: int;
//!     lock l;
//!     fn t1() { acquire l; x = 1; release l; assert(x == 1); }
//!     fn t2() { x = 0; }
//!     fn main() { spawn t1(); spawn t2(); }
//! "#)?;
//! let input: Vec<i64> = vec![];
//! // 1. Stress until the Heisenbug produces a failure core dump.
//! let failure = mcr_core::find_failure(&program, &input, 0..1_000_000, 1_000_000)
//!     .expect("bug exposed");
//! // 2-6. Reverse-engineer, align, diff, prioritize, search.
//! let reproducer = Reproducer::new(&program, ReproOptions::default());
//! let report = reproducer.reproduce(&failure.dump, &input).unwrap();
//! assert!(report.search.reproduced);
//! # Ok::<(), mcr_lang::LangError>(())
//! ```
//!
//! The staged form of the same run, checkpointing to bytes mid-pipeline
//! and resuming in what could be a different process:
//!
//! ```no_run
//! use mcr_core::{ReproOptions, ReproSession};
//! # let program = mcr_lang::compile("fn main() { }").unwrap();
//! # let dump = unimplemented!();
//! # let input: Vec<i64> = vec![];
//! let mut session = ReproSession::new(&program, dump, &input, ReproOptions::default())?;
//! session.run_diff()?;                       // index + align + diff
//! let bytes = session.checkpoint();          // store / ship
//! let mut restored = ReproSession::resume(&program, &bytes)?;
//! let report = restored.run_to_end()?;       // rank + search
//! # Ok::<(), mcr_core::ReproError>(())
//! ```
//!
//! (See the repository `examples/` for complete, runnable walkthroughs.)

#![warn(missing_docs)]

pub mod artifact;
pub mod observe;
pub mod phase;
pub mod pipeline;
pub mod session;
pub mod store;
pub mod stress;

pub use artifact::{
    AlignmentArtifact, CompiledPlanArtifact, DumpDeltaArtifact, FailureIndexArtifact,
    FuncAnalysisArtifact, FuncRaceArtifact, RankedAccessesArtifact, SearchArtifact,
};
pub use observe::{
    NullPhaseObserver, Phase, PhaseEvent, PhaseObserver, TimingLog, PHASES, PHASE_KINDS,
};
pub use phase::{AlignPhase, DiffPhase, IndexPhase, PipelinePhase, RankPhase, SearchPhase};
pub use pipeline::{
    has_sync_points, AlignMode, PhaseBudget, PhaseBudgets, ReproError, ReproOptions,
    ReproOptionsBuilder, ReproReport, ReproTimings, Reproducer,
};
pub use session::{FuncUnitStats, ReproSession};
pub use store::{
    function_fingerprint, measured_frame_size, program_fingerprint, ArtifactStore, BytesStore,
    CorpusManifest, ManifestStats, MemoryStore, NullStore, PhaseKey, PhaseStats, SegAccessStats,
    SegStore, ShardedStore, StoreStats, SEG_STORE_FRAME_SIZE,
};
pub use stress::{
    find_failure, find_failure_cfg, find_failure_par, find_failure_par_cancellable,
    find_failure_par_cfg, find_failure_pool, passes_deterministically,
    passes_deterministically_cfg, RunConfig, StressFailure,
};

// Cancellation lives in `mcr-search` (its budget polls the token inside
// the hot search loop) but is part of the session API surface.
pub use mcr_search::CancelToken;
