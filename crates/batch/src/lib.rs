//! # mcr-batch — the long-running triage service
//!
//! A production triage deployment never sees a closed job list: core
//! dumps arrive continuously, many of them near-duplicates of the same
//! underlying bug. This crate's centerpiece is [`TriageService`], a
//! handle-based, long-running scheduler:
//!
//! * **async job admission** — [`TriageService::submit`] hands back a
//!   [`JobTicket`] immediately and admits jobs *while waves are
//!   executing*; the scheduler loop drains the admission queue at every
//!   wave boundary instead of consuming a pre-built `Vec`;
//! * **back-pressure** — admission is governed by a configurable
//!   [`AdmissionPolicy`] tied to the shared [`minipool::Limit`] executor
//!   budget: `submit` can reject with [`AdmitError::Saturated`] (the
//!   [`SubmitError`] hands the job back, so retries rebuild nothing),
//!   block until capacity frees up, or — with
//!   [`AdmissionPolicy::Adaptive`] — close the telemetry loop: consult
//!   the shared store's live eviction/churn counters and route exactly
//!   the jobs whose predicted artifact footprint would evict hot
//!   entries to a cold shard ([`FleetConfig::cold_store`]) instead;
//! * **ticket-based retrieval** — [`JobTicket::wait`] blocks for (and
//!   helps drive) one job's [`JobOutcome`]; [`JobTicket::try_outcome`]
//!   polls without blocking;
//! * **graceful teardown** — [`TriageService::drain`] runs everything
//!   admitted so far to completion; [`TriageService::shutdown`] closes
//!   admission first and then drains. Firing the service's
//!   [`CancelToken`] mid-run interrupts live sessions and marks
//!   queued-but-unstarted tickets `Cancelled` — no ticket is ever lost;
//! * **one executor** — every session's schedule search draws from a
//!   single [`minipool::Limit`]-backed pool handle;
//! * **one artifact store** — all sessions share a content-addressed
//!   [`ArtifactStore`] (scale it horizontally with
//!   [`ShardedStore`](mcr_core::ShardedStore)), so any phase already
//!   computed for the same *(program, input, dump, options)* anywhere in
//!   the fleet is rehydrated instead of re-run;
//! * **single-flight dedup** — identical phase units scheduled in the
//!   same wave run once: one leader computes, the duplicates wait and
//!   rehydrate from the store;
//! * **per-ticket observer streams** — attach a [`PhaseObserver`] per
//!   job ([`FleetJob::with_observer`]) for live progress; every job's
//!   [`PhaseEvent`]s are also collected into its [`JobOutcome`].
//!
//! ## Scheduling model
//!
//! There is no dedicated scheduler thread (sessions borrow the compiled
//! [`Program`], so the service is lifetime-parameterized and cannot park
//! work on a `'static` thread). Instead, whichever thread blocks on the
//! service — a [`JobTicket::wait`], a [`TriageService::drain`], or an
//! explicit [`TriageService::poll`] — *becomes* the scheduler while it
//! waits: it opens newly admitted jobs, forms a *wave* (each live job's
//! next phase in `(priority, submission)` order), single-flights
//! duplicate [`PhaseKey`]s, fans the leaders out over the shared worker
//! pool, and finalizes completed jobs. Threads that lose the race for
//! the scheduler role sleep until the active wave completes. The
//! service is `Sync`: submitting from many threads (e.g. via
//! `std::thread::scope`) while another drains is the intended shape.
//!
//! ## Compatibility facade
//!
//! [`Fleet`] — the original consume-on-run batch API — survives as a
//! thin wrapper: [`Fleet::run`] submits every pushed job to a private
//! `TriageService` (unbounded admission), drains it, and assembles the
//! same [`FleetOutcome`] as before. Reports are pinned bit-identical
//! between the two APIs by the repository's `tests/batch.rs` and
//! `tests/triage.rs`.
//!
//! ```no_run
//! use mcr_batch::{AdmissionPolicy, FleetConfig, FleetJob, TriageService};
//! # let program = mcr_lang::compile("fn main() { }").unwrap();
//! # let dump: mcr_dump::CoreDump = unimplemented!();
//! let config = FleetConfig {
//!     admission: AdmissionPolicy::Reject { max_pending: 64 },
//!     ..FleetConfig::default()
//! };
//! let service = TriageService::new(config);
//! let ticket = service
//!     .submit(FleetJob::new("crash-1", &program, dump.clone(), &[1, 2]))
//!     .expect("queue not saturated");
//! // ... submit more from any thread while work executes ...
//! let outcome = ticket.wait();
//! assert!(outcome.result.is_ok());
//! service.shutdown();
//! ```
//!
//! Determinism carries over from the phase layer: a job's report is
//! bit-identical whether it ran cold, warm (all cache hits), batched
//! behind a duplicate, or trickled into a half-busy service — the
//! property pinned by the repository's `tests/batch.rs` and
//! `tests/triage.rs`.

#![warn(missing_docs)]

use mcr_core::{
    ArtifactStore, CancelToken, MemoryStore, Phase, PhaseEvent, PhaseKey, PhaseObserver,
    ReproError, ReproOptions, ReproReport, ReproSession, StoreStats, TimingLog,
};
use mcr_dump::CoreDump;
use mcr_lang::Program;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One reproduction job: a failure dump plus everything needed to
/// replay it.
pub struct FleetJob<'p> {
    /// Job name, echoed in the [`JobOutcome`].
    pub name: String,
    /// The compiled program the dump came from.
    pub program: &'p Program,
    /// The failure core dump.
    pub dump: CoreDump,
    /// The failing input.
    pub input: Vec<i64>,
    /// Per-job pipeline options (budgets included). The fleet overrides
    /// the `store` and `pool` attachments with its shared ones.
    pub options: ReproOptions,
    /// Scheduling priority: lower runs earlier within each wave.
    pub priority: u32,
    /// Optional per-ticket progress stream (see
    /// [`FleetJob::with_observer`]).
    observer: Option<Box<dyn PhaseObserver + Send + 'p>>,
}

impl fmt::Debug for FleetJob<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetJob")
            .field("name", &self.name)
            .field("input", &self.input)
            .field("priority", &self.priority)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> FleetJob<'p> {
    /// A job with default options and priority 0.
    pub fn new(
        name: impl Into<String>,
        program: &'p Program,
        dump: CoreDump,
        input: &[i64],
    ) -> FleetJob<'p> {
        FleetJob {
            name: name.into(),
            program,
            dump,
            input: input.to_vec(),
            options: ReproOptions::default(),
            priority: 0,
            observer: None,
        }
    }

    /// Replaces the job's options.
    pub fn with_options(mut self, options: ReproOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the scheduling priority (lower = earlier).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a live per-ticket progress stream: the observer receives
    /// this job's [`PhaseEvent`]s as they happen, from whichever thread
    /// is driving the scheduler. The events are additionally collected
    /// into the job's [`JobOutcome::events`].
    pub fn with_observer(mut self, observer: Box<dyn PhaseObserver + Send + 'p>) -> Self {
        self.observer = Some(observer);
        self
    }
}

/// How [`TriageService::submit`] responds once the service is loaded.
///
/// The pending-job bound is deliberately expressed in *jobs*, tied to
/// the executor budget the service runs on: a [`minipool::Limit`] of W
/// workers makes progress on at most W phase units at a time, so a
/// useful bound is a small multiple of W (see
/// [`FleetConfig::admission_per_worker`], and [`minipool::Limit::in_use`]
/// for live introspection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything immediately (the default; what [`Fleet::run`]
    /// uses — a closed job list provides its own back-pressure).
    #[default]
    Unbounded,
    /// Reject with [`AdmitError::Saturated`] while
    /// admitted-but-unfinished jobs ≥ `max_pending`.
    Reject {
        /// Saturation threshold, in pending (queued + live) jobs.
        max_pending: usize,
    },
    /// Block the submitting thread until pending jobs < `max_pending`
    /// (or the service shuts down, which fails the submission with
    /// [`AdmitError::ShutDown`]). While blocked, the submitter helps
    /// drive scheduling waves — like [`JobTicket::wait`] — so a
    /// single-threaded submit-only caller cannot deadlock itself.
    Block {
        /// Saturation threshold, in pending (queued + live) jobs.
        max_pending: usize,
    },
    /// Telemetry-driven admission: block like [`AdmissionPolicy::Block`]
    /// at `max_pending`, and additionally watch the shared store's
    /// [`StoreStats`] at every admission. While the hot store is
    /// *churning* — lifetime evictions exceed `churn_permille`‰ of
    /// lifetime inserts — any job whose predicted artifact footprint
    /// (the per-phase mean artifact sizes the fleet's telemetry has
    /// recorded, summed over the phases a fresh job inserts) is at
    /// least the hot store's average resident entry is *shed*: opened
    /// against [`FleetConfig::cold_store`] instead, so it cannot evict
    /// hot entries other jobs are about to rehydrate. Shedding is pure
    /// cache placement — the shed job's [`ReproReport`] is bit-identical
    /// to what an [`AdmissionPolicy::Unbounded`] run produces. Without a
    /// configured cold store the policy degrades to plain blocking
    /// back-pressure.
    Adaptive {
        /// Saturation threshold, in pending (queued + live) jobs.
        max_pending: usize,
        /// Eviction-per-insert churn threshold, in per mille (e.g. 250
        /// sheds once more than a quarter of inserts evicted something).
        churn_permille: u32,
    },
}

/// Why [`TriageService::submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The service is saturated per its [`AdmissionPolicy::Reject`]
    /// policy; retry after draining some tickets.
    Saturated {
        /// Jobs pending (queued + live) at rejection time.
        pending: usize,
        /// The policy's threshold.
        max_pending: usize,
    },
    /// [`TriageService::shutdown`] has closed admission.
    ShutDown,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Saturated {
                pending,
                max_pending,
            } => write!(
                f,
                "triage service saturated: {pending} jobs pending (cap {max_pending})"
            ),
            AdmitError::ShutDown => write!(f, "triage service is shut down"),
        }
    }
}

impl Error for AdmitError {}

/// A refused submission: the typed [`AdmitError`] reason plus the job
/// handed back untouched (dump, options, observer and all), so a caller
/// retrying under back-pressure never rebuilds it — the
/// [`std::sync::mpsc::TrySendError`] shape. Returned boxed (a job
/// carries a whole core dump; the happy path shouldn't pay its size).
#[derive(Debug)]
pub struct SubmitError<'p> {
    /// Why admission refused.
    pub reason: AdmitError,
    /// The refused job, returned for retry.
    pub job: FleetJob<'p>,
}

impl fmt::Display for SubmitError<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (job {:?} returned)", self.reason, self.job.name)
    }
}

impl Error for SubmitError<'_> {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.reason)
    }
}

/// Fleet-wide configuration (shared by [`TriageService`] and the
/// [`Fleet`] facade).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker-thread budget shared by *everything* the fleet runs:
    /// concurrent phase units and the searches inside them. Defaults to
    /// the machine's available cores.
    pub workers: usize,
    /// The shared content-addressed artifact store. Defaults to an
    /// unbounded [`MemoryStore`]; swap in a
    /// [`ShardedStore`](mcr_core::ShardedStore) to partition the cache.
    pub store: Arc<dyn ArtifactStore>,
    /// Fleet-wide cancellation: firing this token propagates to every
    /// live job's session token and marks queued-but-unstarted jobs
    /// [`ReproError::Cancelled`]. In-flight searches complete with
    /// partial results; other phases stop with
    /// [`ReproError::Cancelled`].
    pub cancel: CancelToken,
    /// Back-pressure applied by [`TriageService::submit`].
    pub admission: AdmissionPolicy,
    /// Optional cold shard for [`AdmissionPolicy::Adaptive`]: jobs the
    /// admission telemetry predicts would churn the hot store are opened
    /// against this store instead. `None` disables shedding (adaptive
    /// admission then degrades to pure blocking back-pressure). Shedding
    /// never changes a report — only which store caches the job's
    /// artifacts.
    pub cold_store: Option<Arc<dyn ArtifactStore>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: minipool::available_parallelism(),
            store: Arc::new(MemoryStore::unbounded()),
            cancel: CancelToken::new(),
            admission: AdmissionPolicy::Unbounded,
            cold_store: None,
        }
    }
}

impl FleetConfig {
    /// Sets a [`AdmissionPolicy::Reject`] bound of `per_worker` pending
    /// jobs per worker of the executor budget — the back-pressure knob
    /// tied to the shared [`minipool::Limit`].
    pub fn admission_per_worker(mut self, per_worker: usize) -> Self {
        self.admission = AdmissionPolicy::Reject {
            max_pending: per_worker.max(1) * self.workers.max(1),
        };
        self
    }
}

/// What happened to one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The job's scheduling priority.
    pub priority: u32,
    /// The final report, or the error that stopped the job.
    pub result: Result<ReproReport, ReproError>,
    /// The job's full phase-event stream, in order.
    pub events: Vec<PhaseEvent>,
    /// Phases this job computed itself.
    pub computed: u32,
    /// Phases rehydrated from the shared store.
    pub cache_hits: u32,
    /// Phase units that waited behind an identical in-flight unit
    /// (single-flight followers).
    pub deduped: u32,
    /// Wall-clock time this job spent executing phase units.
    pub busy: Duration,
}

/// Fleet-wide totals.
#[derive(Debug, Clone, Copy)]
pub struct FleetSummary {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that finished with a report.
    pub completed: usize,
    /// Jobs that stopped with an error.
    pub failed: usize,
    /// Phase units scheduled (computed + cache hits).
    pub phase_units: u64,
    /// Phase units actually computed.
    pub computed: u64,
    /// Phase units rehydrated from the store.
    pub cache_hits: u64,
    /// Phase units deduplicated while in flight (followers of a
    /// same-key leader in the same wave).
    pub deduped_in_flight: u64,
    /// Jobs the adaptive admission policy shed to the cold store.
    pub shed: u64,
    /// Scheduling waves the fleet ran.
    pub waves: u64,
    /// Worker-thread budget the fleet ran with.
    pub workers: usize,
    /// Shared-store counters at the end of the run.
    pub store: StoreStats,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// The fleet's result: per-job outcomes (in submission order) plus the
/// summary.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One outcome per submitted job, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Fleet-wide totals.
    pub summary: FleetSummary,
    /// Name → index into [`FleetOutcome::jobs`], built once. Duplicate
    /// names resolve last-wins (see [`FleetOutcome::job`]).
    by_name: HashMap<String, usize>,
}

impl FleetOutcome {
    fn new(jobs: Vec<JobOutcome>, summary: FleetSummary) -> FleetOutcome {
        // Insertion order makes later submissions overwrite earlier
        // ones: last-wins, documented on `job`.
        let by_name = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.name.clone(), i))
            .collect();
        FleetOutcome {
            jobs,
            summary,
            by_name,
        }
    }

    /// The outcome of the named job, if present — an O(1) map lookup
    /// (the index is built once when the outcome is assembled).
    ///
    /// Job names are not required to be unique; when several jobs share
    /// a name, the **last-submitted** one wins (a triage queue's newest
    /// report for a recurring crash is the interesting one). Iterate
    /// [`FleetOutcome::jobs`] to see every duplicate.
    pub fn job(&self, name: &str) -> Option<&JobOutcome> {
        self.by_name.get(name).map(|&i| &self.jobs[i])
    }
}

/// Tees each event into the job's collected log and the optional
/// user-supplied per-ticket observer.
struct TeeObserver<'p> {
    log: Arc<Mutex<TimingLog>>,
    user: Option<Box<dyn PhaseObserver + Send + 'p>>,
}

impl PhaseObserver for TeeObserver<'_> {
    fn on_event(&mut self, event: &PhaseEvent) {
        self.log.lock().expect("tee log poisoned").on_event(event);
        if let Some(user) = &mut self.user {
            user.on_event(event);
        }
    }
}

/// A live job's scheduling state (boxed — a session is orders of
/// magnitude larger than the other variants).
struct LiveSlot<'p> {
    session: ReproSession<'p>,
    log: Arc<Mutex<TimingLog>>,
    error: Option<ReproError>,
    deduped: u32,
    busy: Duration,
    cancel_sent: bool,
}

/// A job admitted but not yet opened (its session does not exist yet —
/// admission is cheap and never runs program analysis).
struct QueuedJob<'p> {
    program: &'p Program,
    dump: CoreDump,
    input: Vec<i64>,
    options: ReproOptions,
    observer: Option<Box<dyn PhaseObserver + Send + 'p>>,
    /// Adaptive admission decided at submit time to route this job's
    /// artifacts to the cold store.
    shed: bool,
}

/// One job's lifecycle inside the service.
enum SlotState<'p> {
    /// Admitted; opened into a session at the next wave boundary.
    Queued(Box<QueuedJob<'p>>),
    /// Session open, phases pending.
    Live(Box<LiveSlot<'p>>),
    /// Outcome ready for its ticket.
    Done(Box<JobOutcome>),
    /// Outcome handed to the ticket.
    Claimed,
}

/// One job's slot: immutable identity plus mutable lifecycle state.
/// Slots are individually locked so wave leaders can execute in
/// parallel, each worker touching a distinct slot.
struct Slot<'p> {
    name: String,
    priority: u32,
    /// Submission index: tie-break for wave ordering (stable even after
    /// earlier slots are compacted away).
    seq: usize,
    state: Mutex<SlotState<'p>>,
}

/// State under the service-wide mutex (never held while a phase runs).
struct Shared<'p> {
    /// Slots still holding work or an unclaimed outcome. Finalized
    /// slots are dropped from here at the next wave boundary (their
    /// tickets keep them alive), so a long-running service's wave
    /// formation scales with *live* jobs, not lifetime submissions.
    slots: Vec<Arc<Slot<'p>>>,
    /// Jobs admitted over the service's lifetime.
    submitted: usize,
    /// Jobs in `Queued`/`Live` state.
    pending: usize,
    /// `shutdown` has closed admission.
    closed: bool,
    /// A thread currently holds the scheduler role (guards the
    /// sleep-vs-retry decision in the waiter loop).
    scheduling: bool,
    waves: u64,
    completed: usize,
    failed: usize,
    computed: u64,
    cache_hits: u64,
    deduped: u64,
    /// Jobs the adaptive policy shed to the cold store.
    shed: u64,
}

/// A long-running, handle-based triage scheduler. See the [crate
/// docs](crate) for the model; see [`Fleet`] for the closed-list
/// compatibility facade.
pub struct TriageService<'p> {
    store: Arc<dyn ArtifactStore>,
    cold_store: Option<Arc<dyn ArtifactStore>>,
    cancel: CancelToken,
    admission: AdmissionPolicy,
    workers: usize,
    limit: minipool::Limit,
    pool: minipool::Pool,
    shared: Mutex<Shared<'p>>,
    /// Signalled on every wave boundary and admission-capacity change.
    cv: Condvar,
    /// Exclusive scheduler role; `try_lock` elects the driving thread.
    sched: Mutex<()>,
    started: Instant,
}

impl fmt::Debug for TriageService<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shared = self.lock_shared();
        f.debug_struct("TriageService")
            .field("workers", &self.workers)
            .field("admission", &self.admission)
            .field("jobs", &shared.submitted)
            .field("pending", &shared.pending)
            .field("closed", &shared.closed)
            .field("waves", &shared.waves)
            .finish_non_exhaustive()
    }
}

/// A claim on one submitted job's [`JobOutcome`].
///
/// Tickets borrow the service (dropping a ticket never cancels its job;
/// the outcome simply stays unclaimed). [`JobTicket::wait`] helps drive
/// the scheduler while it blocks, so a single-threaded caller that only
/// ever submits and waits still makes progress.
pub struct JobTicket<'s, 'p> {
    service: &'s TriageService<'p>,
    slot: Arc<Slot<'p>>,
    id: usize,
}

impl fmt::Debug for JobTicket<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobTicket")
            .field("id", &self.id)
            .field("name", &self.slot.name)
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<'s, 'p> JobTicket<'s, 'p> {
    /// The job's submission index (also its position in
    /// [`FleetOutcome::jobs`] under the facade).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.slot.name
    }

    /// Whether the outcome is ready — [`JobTicket::wait`] would return
    /// without driving any further work. Never blocks: a job whose slot
    /// is busy executing a phase is by definition not ready, so
    /// contention reports `false` without waiting for the phase.
    pub fn is_ready(&self) -> bool {
        match self.slot.state.try_lock() {
            Ok(state) => matches!(*state, SlotState::Done(_)),
            Err(std::sync::TryLockError::WouldBlock) => false,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("triage slot poisoned"),
        }
    }

    /// Claims the outcome if it is ready; otherwise hands the ticket
    /// back untouched. Never blocks and never drives the scheduler —
    /// a slot busy executing a phase (or being finalized) counts as not
    /// ready — so pair it with [`TriageService::poll`] in event loops.
    pub fn try_outcome(self) -> Result<JobOutcome, Self> {
        let claimed = {
            match self.slot.state.try_lock() {
                Ok(mut state) => match std::mem::replace(&mut *state, SlotState::Claimed) {
                    SlotState::Done(outcome) => Some(*outcome),
                    other => {
                        *state = other;
                        None
                    }
                },
                Err(std::sync::TryLockError::WouldBlock) => None,
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("triage slot poisoned"),
            }
        };
        match claimed {
            Some(outcome) => Ok(outcome),
            None => Err(self),
        }
    }

    /// Blocks until the job's outcome is ready and returns it. The
    /// waiting thread volunteers as the scheduler whenever the role is
    /// free, so `wait` never depends on another thread driving the
    /// service.
    pub fn wait(mut self) -> JobOutcome {
        loop {
            self = match self.try_outcome() {
                Ok(outcome) => return outcome,
                Err(ticket) => ticket,
            };
            self.service.drive_or_park();
        }
    }
}

impl<'p> TriageService<'p> {
    /// An idle service with no jobs. A bounded admission policy with
    /// `max_pending: 0` would refuse all work (and livelock a blocking
    /// submitter), so the bound is clamped to at least 1.
    pub fn new(config: FleetConfig) -> TriageService<'p> {
        let workers = config.workers.max(1);
        let limit = minipool::Limit::new(workers);
        let pool = minipool::Pool::with_limit(workers, limit.clone());
        let admission = match config.admission {
            AdmissionPolicy::Unbounded => AdmissionPolicy::Unbounded,
            AdmissionPolicy::Reject { max_pending } => AdmissionPolicy::Reject {
                max_pending: max_pending.max(1),
            },
            AdmissionPolicy::Block { max_pending } => AdmissionPolicy::Block {
                max_pending: max_pending.max(1),
            },
            AdmissionPolicy::Adaptive {
                max_pending,
                churn_permille,
            } => AdmissionPolicy::Adaptive {
                max_pending: max_pending.max(1),
                churn_permille,
            },
        };
        TriageService {
            store: config.store,
            cold_store: config.cold_store,
            cancel: config.cancel,
            admission,
            workers,
            limit,
            pool,
            shared: Mutex::new(Shared {
                slots: Vec::new(),
                submitted: 0,
                pending: 0,
                closed: false,
                scheduling: false,
                waves: 0,
                completed: 0,
                failed: 0,
                computed: 0,
                cache_hits: 0,
                deduped: 0,
                shed: 0,
            }),
            cv: Condvar::new(),
            sched: Mutex::new(()),
            started: Instant::now(),
        }
    }

    fn lock_shared(&self) -> MutexGuard<'_, Shared<'p>> {
        self.shared.lock().expect("triage service poisoned")
    }

    /// A clone of the fleet-wide cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The shared executor budget (inspect
    /// [`minipool::Limit::in_use`] for instantaneous load).
    pub fn limit(&self) -> &minipool::Limit {
        &self.limit
    }

    /// Jobs admitted but not yet finished (queued + live).
    pub fn pending(&self) -> usize {
        self.lock_shared().pending
    }

    /// Whether [`TriageService::shutdown`] has closed admission.
    pub fn is_closed(&self) -> bool {
        self.lock_shared().closed
    }

    /// Admits a job, returning its [`JobTicket`]. Admission is cheap —
    /// the session (program analysis included) is opened by the
    /// scheduler at the next wave boundary, *while earlier waves may
    /// still be executing on other threads*.
    ///
    /// # Errors
    ///
    /// [`AdmitError::ShutDown`] after [`TriageService::shutdown`];
    /// [`AdmitError::Saturated`] under a [`AdmissionPolicy::Reject`]
    /// bound. Either way the [`SubmitError`] hands the job back for
    /// retry. An [`AdmissionPolicy::Block`] policy blocks instead —
    /// and, like [`JobTicket::wait`], the blocked submitter volunteers
    /// as the scheduler while it waits, so even a single-threaded
    /// caller that only ever submits cannot deadlock on its own
    /// back-pressure.
    pub fn submit(&self, job: FleetJob<'p>) -> Result<JobTicket<'_, 'p>, Box<SubmitError<'p>>> {
        let mut shared = self.lock_shared();
        loop {
            if shared.closed {
                return Err(Box::new(SubmitError {
                    reason: AdmitError::ShutDown,
                    job,
                }));
            }
            match self.admission {
                AdmissionPolicy::Unbounded => break,
                AdmissionPolicy::Reject { max_pending } => {
                    if shared.pending >= max_pending {
                        return Err(Box::new(SubmitError {
                            reason: AdmitError::Saturated {
                                pending: shared.pending,
                                max_pending,
                            },
                            job,
                        }));
                    }
                    break;
                }
                AdmissionPolicy::Block { max_pending }
                | AdmissionPolicy::Adaptive { max_pending, .. } => {
                    if shared.pending < max_pending {
                        break;
                    }
                    // Help drain: drive a wave (or park until the
                    // active scheduler finishes one), then re-check.
                    drop(shared);
                    self.drive_or_park();
                    shared = self.lock_shared();
                }
            }
        }
        // The adaptive policy decides cache placement at admission,
        // from the store telemetry as of *this* submit.
        let shed = match self.admission {
            AdmissionPolicy::Adaptive { churn_permille, .. } => self.sheds_to_cold(churn_permille),
            _ => false,
        };
        shared.shed += u64::from(shed);
        let FleetJob {
            name,
            program,
            dump,
            input,
            options,
            priority,
            observer,
        } = job;
        let seq = shared.submitted;
        shared.submitted += 1;
        let slot = Arc::new(Slot {
            name,
            priority,
            seq,
            state: Mutex::new(SlotState::Queued(Box::new(QueuedJob {
                program,
                dump,
                input,
                options,
                observer,
                shed,
            }))),
        });
        shared.slots.push(Arc::clone(&slot));
        shared.pending += 1;
        drop(shared);
        Ok(JobTicket {
            service: self,
            slot,
            id: seq,
        })
    }

    /// Whether the adaptive policy routes the next admitted job's
    /// artifacts to the cold shard. Two conditions, both read from the
    /// hot store's live [`StoreStats`]: the store must be churning
    /// (lifetime evictions above the policy's per-mille threshold of
    /// lifetime inserts), and the job's predicted footprint — the
    /// per-phase mean artifact size telemetry has recorded, summed over
    /// the phase kinds a fresh job inserts — must be at least the hot
    /// store's average resident entry, i.e. caching it would evict
    /// something at least as valuable as what it adds.
    fn sheds_to_cold(&self, churn_permille: u32) -> bool {
        if self.cold_store.is_none() {
            return false;
        }
        let stats = self.store.stats();
        if stats.inserts == 0 || stats.entries == 0 {
            return false;
        }
        let churning = stats.evictions.saturating_mul(1000)
            > stats.inserts.saturating_mul(churn_permille as u64);
        if !churning {
            return false;
        }
        let predicted: usize = stats
            .per_phase
            .iter()
            .filter(|p| p.inserts > 0 && p.entries > 0)
            .map(|p| p.bytes / p.entries)
            .sum();
        predicted >= stats.bytes / stats.entries
    }

    /// Runs at most one scheduling wave on the calling thread (a no-op
    /// when another thread holds the scheduler role). Returns whether
    /// jobs are still pending — the event-loop integration point:
    /// `while service.poll() { ... do other work ... }`.
    pub fn poll(&self) -> bool {
        self.try_drive();
        self.pending() > 0
    }

    /// Blocks until every job admitted so far (and any admitted while
    /// draining) has an outcome. Admission stays open; an empty queue
    /// returns immediately.
    pub fn drain(&self) {
        loop {
            if self.lock_shared().pending == 0 {
                return;
            }
            self.drive_or_park();
        }
    }

    /// Gracefully shuts down: closes admission (subsequent
    /// [`TriageService::submit`]s fail with [`AdmitError::ShutDown`]),
    /// then drains every already-admitted job to its outcome and
    /// returns the final [`FleetSummary`]. Idempotent.
    pub fn shutdown(&self) -> FleetSummary {
        {
            let mut shared = self.lock_shared();
            shared.closed = true;
            // Blocked submitters must observe the closure.
            self.cv.notify_all();
        }
        self.drain();
        self.summary()
    }

    /// A snapshot of the fleet-wide totals so far.
    pub fn summary(&self) -> FleetSummary {
        let shared = self.lock_shared();
        FleetSummary {
            jobs: shared.submitted,
            completed: shared.completed,
            failed: shared.failed,
            phase_units: shared.computed + shared.cache_hits,
            computed: shared.computed,
            cache_hits: shared.cache_hits,
            deduped_in_flight: shared.deduped,
            shed: shared.shed,
            waves: shared.waves,
            workers: self.workers,
            store: self.store.stats(),
            wall: self.started.elapsed(),
        }
    }

    /// Takes the scheduler role and runs one wave, if the role is free.
    /// Returns whether this thread drove a step.
    fn try_drive(&self) -> bool {
        let role = match self.sched.try_lock() {
            Ok(role) => role,
            Err(std::sync::TryLockError::WouldBlock) => return false,
            // A previous scheduler panicked mid-wave. Propagate the
            // failure instead of reporting "role busy" — treating the
            // poison as busy would park every waiter forever.
            Err(std::sync::TryLockError::Poisoned(_)) => {
                panic!("triage scheduler poisoned by an earlier panic")
            }
        };
        self.lock_shared().scheduling = true;
        // Reset the flag and wake parked waiters even when the wave
        // panics (the unwind drops this guard before releasing — and
        // poisoning — `sched`), so blocked threads retry, observe the
        // poison, and propagate the failure instead of sleeping.
        struct SchedulingGuard<'a, 'p>(&'a TriageService<'p>);
        impl Drop for SchedulingGuard<'_, '_> {
            fn drop(&mut self) {
                let mut shared = self
                    .0
                    .shared
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                shared.scheduling = false;
                drop(shared);
                self.0.cv.notify_all();
            }
        }
        let _guard = SchedulingGuard(self);
        self.advance(&role);
        true
    }

    /// Tries to take the scheduler role and run one wave; otherwise
    /// parks until the active scheduler signals a wave boundary.
    fn drive_or_park(&self) {
        if self.try_drive() {
            return;
        }
        let shared = self.lock_shared();
        if shared.scheduling {
            // Timeout only as a safety net against lost wakeups; the
            // scheduler notifies at every wave boundary.
            let _ = self
                .cv
                .wait_timeout(shared, Duration::from_millis(100))
                .expect("triage service poisoned");
        }
        // else: the role was freed between our try_lock and the check —
        // loop around and try again.
    }

    /// One scheduler step, holding the role token: open newly admitted
    /// jobs, form a wave, execute it, finalize completed jobs.
    fn advance(&self, _role: &MutexGuard<'_, ()>) {
        let cancelled = self.cancel.is_cancelled();
        // Snapshot the slots in (priority, submission) order. New
        // submissions during the wave are picked up next time.
        let order: Vec<Arc<Slot<'p>>> = {
            let shared = self.lock_shared();
            let mut order: Vec<Arc<Slot<'p>>> = shared.slots.iter().map(Arc::clone).collect();
            order.sort_unstable_by_key(|slot| (slot.priority, slot.seq));
            order
        };

        // Open queued jobs (or cancel them before they ever start), and
        // propagate a fired fleet token into live sessions.
        let mut finalized: Vec<FinalizedDelta> = Vec::new();
        for slot in &order {
            let mut state = slot.state.lock().expect("triage slot poisoned");
            match std::mem::replace(&mut *state, SlotState::Claimed) {
                SlotState::Queued(_) if cancelled => {
                    // Queued-but-unstarted: never lost, surfaced as a
                    // cancelled outcome before any phase could start.
                    finalized.push(FinalizedDelta::failed());
                    *state = SlotState::Done(Box::new(failed_outcome(
                        slot,
                        ReproError::Cancelled(Phase::Index),
                    )));
                }
                SlotState::Queued(queued) => {
                    let QueuedJob {
                        program,
                        dump,
                        input,
                        mut options,
                        observer,
                        shed,
                    } = *queued;
                    options.store = Some(match (&self.cold_store, shed) {
                        (Some(cold), true) => Arc::clone(cold),
                        _ => Arc::clone(&self.store),
                    });
                    options.pool = Some(self.pool.clone());
                    match ReproSession::new(program, dump, &input, options) {
                        Ok(mut session) => {
                            let log = Arc::new(Mutex::new(TimingLog::new()));
                            session.set_observer(Box::new(TeeObserver {
                                log: Arc::clone(&log),
                                user: observer,
                            }));
                            *state = SlotState::Live(Box::new(LiveSlot {
                                session,
                                log,
                                error: None,
                                deduped: 0,
                                busy: Duration::ZERO,
                                cancel_sent: false,
                            }));
                        }
                        Err(e) => {
                            // The dump could not even open a session
                            // (e.g. it carries no failure).
                            finalized.push(FinalizedDelta::failed());
                            *state = SlotState::Done(Box::new(failed_outcome(slot, e)));
                        }
                    }
                }
                other => {
                    if let SlotState::Live(mut live) = other {
                        if cancelled && !live.cancel_sent {
                            live.session.cancel_token().cancel();
                            live.cancel_sent = true;
                        }
                        *state = SlotState::Live(live);
                    } else {
                        *state = other;
                    }
                }
            }
        }

        // Form the wave: every live job's next phase, single-flighting
        // identical content-addressed keys.
        let mut leaders: Vec<(Arc<Slot<'p>>, Phase)> = Vec::new();
        let mut followers: Vec<(Arc<Slot<'p>>, Phase)> = Vec::new();
        let mut in_flight: HashSet<PhaseKey> = HashSet::new();
        for slot in &order {
            let state = slot.state.lock().expect("triage slot poisoned");
            if let SlotState::Live(live) = &*state {
                debug_assert!(live.error.is_none(), "errored lives are finalized");
                let Some(phase) = live.session.next_phase() else {
                    continue;
                };
                let key = live.session.next_phase_key().expect("upstream complete");
                if in_flight.insert(key) {
                    leaders.push((Arc::clone(slot), phase));
                } else {
                    followers.push((Arc::clone(slot), phase));
                }
            }
        }

        let ran_wave = !leaders.is_empty();
        if ran_wave {
            // Leaders fan out over the shared pool; distinct jobs, so
            // each worker locks a distinct slot.
            self.pool.for_each_index(leaders.len(), |k| {
                let (slot, phase) = &leaders[k];
                run_unit(slot, *phase);
            });
            // Followers run after their leader: their key now hits the
            // store and rehydrates (or recomputes, if the leader's
            // artifact was partial and uncacheable — still correct).
            for (slot, phase) in &followers {
                run_unit(slot, *phase);
                if let SlotState::Live(live) =
                    &mut *slot.state.lock().expect("triage slot poisoned")
                {
                    live.deduped += 1;
                }
            }

            // Finalize jobs the wave completed or failed.
            for (slot, _) in leaders.iter().chain(&followers) {
                let mut state = slot.state.lock().expect("triage slot poisoned");
                let done = match &*state {
                    SlotState::Live(live) => live.error.is_some() || live.session.is_complete(),
                    _ => false,
                };
                if !done {
                    continue;
                }
                let SlotState::Live(live) = std::mem::replace(&mut *state, SlotState::Claimed)
                else {
                    unreachable!("checked above");
                };
                let (outcome, delta) = finalize(&slot.name, slot.priority, *live);
                finalized.push(delta);
                *state = SlotState::Done(Box::new(outcome));
            }
        }

        // Publish the wave boundary.
        let mut shared = self.lock_shared();
        if ran_wave {
            shared.waves += 1;
        }
        for delta in &finalized {
            shared.pending -= 1;
            shared.completed += usize::from(!delta.failed);
            shared.failed += usize::from(delta.failed);
            shared.computed += delta.computed as u64;
            shared.cache_hits += delta.cache_hits as u64;
            shared.deduped += delta.deduped as u64;
        }
        if !finalized.is_empty() {
            // Compact finalized slots out of the wave-formation set: a
            // ticket keeps its own slot alive, so a long-running
            // service's per-wave cost tracks *live* jobs, not lifetime
            // submissions. (Only this scheduler thread finalizes, so
            // the try-lock can miss a slot only while its ticket is
            // mid-claim — i.e. already finalized — and `retain` keeps
            // it one wave longer, which is harmless.)
            shared.slots.retain(|slot| match slot.state.try_lock() {
                Ok(state) => !matches!(*state, SlotState::Done(_) | SlotState::Claimed),
                Err(_) => true,
            });
        }
        drop(shared);
        self.cv.notify_all();
    }
}

/// Totals one finalized job contributes to the fleet summary.
struct FinalizedDelta {
    failed: bool,
    computed: u32,
    cache_hits: u32,
    deduped: u32,
}

impl FinalizedDelta {
    fn failed() -> FinalizedDelta {
        FinalizedDelta {
            failed: true,
            computed: 0,
            cache_hits: 0,
            deduped: 0,
        }
    }
}

/// The outcome of a job that failed before any phase could run
/// (rejected dump, or cancelled while still queued).
fn failed_outcome(slot: &Slot<'_>, err: ReproError) -> JobOutcome {
    JobOutcome {
        name: slot.name.clone(),
        priority: slot.priority,
        result: Err(err),
        events: Vec::new(),
        computed: 0,
        cache_hits: 0,
        deduped: 0,
        busy: Duration::ZERO,
    }
}

/// Runs one phase unit against a slot (skipping slots that finalized
/// since the wave formed).
fn run_unit(slot: &Slot<'_>, phase: Phase) {
    let mut state = slot.state.lock().expect("triage slot poisoned");
    if let SlotState::Live(live) = &mut *state {
        let LiveSlot {
            session,
            error,
            busy,
            ..
        } = live.as_mut();
        let t0 = Instant::now();
        if let Err(e) = session.run_phase(phase) {
            *error = Some(e);
        }
        *busy += t0.elapsed();
    }
}

/// Turns a finished live slot into its outcome + summary delta.
fn finalize(name: &str, priority: u32, live: LiveSlot<'_>) -> (JobOutcome, FinalizedDelta) {
    let LiveSlot {
        session,
        log,
        error,
        deduped,
        busy,
        ..
    } = live;
    let events = log.lock().expect("triage log poisoned").events.clone();
    let computed = events
        .iter()
        .filter(|e| matches!(e, PhaseEvent::Finished { .. }))
        .count() as u32;
    let cache_hits = events
        .iter()
        .filter(|e| matches!(e, PhaseEvent::CacheHit { .. }))
        .count() as u32;
    let result = match error {
        Some(e) => Err(e),
        None => Ok(session.report().expect("no error means complete")),
    };
    let delta = FinalizedDelta {
        failed: result.is_err(),
        computed,
        cache_hits,
        deduped,
    };
    (
        JobOutcome {
            name: name.to_string(),
            priority,
            result,
            events,
            computed,
            cache_hits,
            deduped,
            busy,
        },
        delta,
    )
}

/// A closed batch of reproduction jobs scheduled over one shared
/// executor and artifact store — the original `mcr-batch` API, kept as
/// a thin facade over [`TriageService`]: [`Fleet::run`] submits every
/// pushed job (unbounded admission), drains the service, and collects
/// the outcomes in submission order.
pub struct Fleet<'p> {
    config: FleetConfig,
    jobs: Vec<FleetJob<'p>>,
}

impl<'p> Fleet<'p> {
    /// An empty fleet.
    pub fn new(config: FleetConfig) -> Fleet<'p> {
        Fleet {
            config,
            jobs: Vec::new(),
        }
    }

    /// Adds a job.
    pub fn push(&mut self, job: FleetJob<'p>) {
        self.jobs.push(job);
    }

    /// Number of submitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs have been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// A clone of the fleet-wide cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.config.cancel.clone()
    }

    /// Runs every job to completion (or error) and returns the
    /// outcomes: submit-all + drain on a private [`TriageService`]
    /// (admission is forced unbounded — a closed job list provides its
    /// own back-pressure).
    ///
    /// Scheduling model: see [`TriageService`]; with every job admitted
    /// up front the waves are exactly the classic fleet waves — each
    /// unfinished job's next phase in `(priority, submission)` order,
    /// deduplicated by content-addressed [`PhaseKey`].
    pub fn run(self) -> FleetOutcome {
        let Fleet { config, jobs } = self;
        let service = TriageService::new(FleetConfig {
            admission: AdmissionPolicy::Unbounded,
            ..config
        });
        let tickets: Vec<JobTicket<'_, 'p>> = jobs
            .into_iter()
            .map(|job| service.submit(job).expect("unbounded admission"))
            .collect();
        service.drain();
        let outcomes: Vec<JobOutcome> = tickets.into_iter().map(JobTicket::wait).collect();
        FleetOutcome::new(outcomes, service.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_core::{find_failure, Reproducer};

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    const INPUT: [i64; 2] = [0, 1];

    fn fig1_failure() -> (mcr_lang::Program, mcr_dump::CoreDump) {
        let p = mcr_lang::compile(FIG1).unwrap();
        let sf = find_failure(&p, &INPUT, 0..200_000, 1_000_000).expect("stress exposes");
        (p, sf.dump)
    }

    #[test]
    fn duplicate_jobs_are_deduplicated_and_agree_with_a_solo_run() {
        let (program, dump) = fig1_failure();
        let solo = Reproducer::new(&program, ReproOptions::default())
            .reproduce(&dump, &INPUT)
            .unwrap();

        let mut fleet = Fleet::new(FleetConfig::default());
        for i in 0..3 {
            fleet.push(FleetJob::new(
                format!("dup-{i}"),
                &program,
                dump.clone(),
                &INPUT,
            ));
        }
        let outcome = fleet.run();
        assert_eq!(outcome.summary.jobs, 3);
        assert_eq!(outcome.summary.completed, 3);
        assert_eq!(outcome.summary.failed, 0);
        // 3 jobs x 5 phases scheduled, but only 5 computed: the
        // duplicates were either deduped in flight or store hits.
        assert_eq!(outcome.summary.phase_units, 15);
        assert_eq!(outcome.summary.computed, 5);
        assert_eq!(outcome.summary.cache_hits, 10);
        assert_eq!(outcome.summary.deduped_in_flight, 10);
        assert_eq!(outcome.summary.waves, 5);
        for job in &outcome.jobs {
            let report = job.result.as_ref().expect("job completed");
            assert_eq!(report.search.reproduced, solo.search.reproduced);
            assert_eq!(report.search.tries, solo.search.tries);
            assert_eq!(report.search.winning, solo.search.winning);
            assert_eq!(report.csv_paths, solo.csv_paths);
            assert_eq!(report.diffs, solo.diffs);
        }
        // Exactly one job computed; the others only hit.
        let computed: u32 = outcome.jobs.iter().map(|j| j.computed).sum();
        assert_eq!(computed, 5);
    }

    #[test]
    fn priorities_order_leaders_and_outcomes_keep_submission_order() {
        let (program, dump) = fig1_failure();
        let mut fleet = Fleet::new(FleetConfig {
            workers: 1,
            ..Default::default()
        });
        fleet.push(FleetJob::new("late", &program, dump.clone(), &INPUT).with_priority(9));
        // A *distinct* unit (different options → different keys).
        let opts = ReproOptions::builder().trace_window(1_000_000).build();
        fleet.push(
            FleetJob::new("early", &program, dump.clone(), &INPUT)
                .with_options(opts)
                .with_priority(1),
        );
        let outcome = fleet.run();
        // Outcomes stay in submission order regardless of priority.
        assert_eq!(outcome.jobs[0].name, "late");
        assert_eq!(outcome.jobs[1].name, "early");
        assert_eq!(outcome.summary.completed, 2);
        // Distinct keys: nothing deduped, every unit computed.
        assert_eq!(outcome.summary.deduped_in_flight, 0);
        assert_eq!(outcome.summary.computed, 10);
    }

    #[test]
    fn rejected_dumps_surface_as_failed_jobs() {
        let program = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        let mut vm = mcr_vm::Vm::new(&program, &[]);
        mcr_vm::run(
            &mut vm,
            &mut mcr_vm::DeterministicScheduler::new(),
            &mut mcr_vm::NullObserver,
            10_000,
        );
        let dump =
            mcr_dump::CoreDump::capture(&vm, mcr_vm::ThreadId(0), mcr_dump::DumpReason::Manual);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.push(FleetJob::new("not-a-failure", &program, dump, &[]));
        let outcome = fleet.run();
        assert_eq!(outcome.summary.failed, 1);
        assert!(matches!(
            outcome.jobs[0].result,
            Err(ReproError::NotAFailureDump)
        ));
    }

    #[test]
    fn pre_cancelled_fleet_stops_every_job() {
        let (program, dump) = fig1_failure();
        let config = FleetConfig::default();
        config.cancel.cancel();
        let mut fleet = Fleet::new(config);
        fleet.push(FleetJob::new("job", &program, dump, &INPUT));
        let outcome = fleet.run();
        assert_eq!(outcome.summary.failed, 1);
        assert!(matches!(
            outcome.jobs[0].result,
            Err(ReproError::Cancelled(Phase::Index))
        ));
    }

    #[test]
    fn warm_store_makes_a_second_fleet_all_hits() {
        let (program, dump) = fig1_failure();
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let config = FleetConfig {
            store: Arc::clone(&store),
            ..Default::default()
        };
        let mut first = Fleet::new(config.clone());
        first.push(FleetJob::new("cold", &program, dump.clone(), &INPUT));
        let first = first.run();
        assert_eq!(first.summary.computed, 5);

        let mut second = Fleet::new(config);
        second.push(FleetJob::new("warm", &program, dump, &INPUT));
        let second = second.run();
        assert_eq!(second.summary.computed, 0);
        assert_eq!(second.summary.cache_hits, 5);
        let cold = first.jobs[0].result.as_ref().unwrap();
        let warm = second.jobs[0].result.as_ref().unwrap();
        // Rehydrated reports are bit-identical, timings included.
        assert_eq!(cold, warm);
    }

    #[test]
    fn outcome_lookup_is_indexed_and_duplicate_names_resolve_last_wins() {
        let (program, dump) = fig1_failure();
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let mut fleet = Fleet::new(FleetConfig {
            store,
            ..Default::default()
        });
        // Two jobs sharing a name, with distinct priorities to tell the
        // outcomes apart.
        fleet.push(FleetJob::new("crash", &program, dump.clone(), &INPUT).with_priority(1));
        fleet.push(FleetJob::new("crash", &program, dump.clone(), &INPUT).with_priority(2));
        fleet.push(FleetJob::new("other", &program, dump, &INPUT).with_priority(3));
        let outcome = fleet.run();
        // Both duplicates are retained in submission order…
        assert_eq!(outcome.jobs.len(), 3);
        assert_eq!(outcome.jobs[0].priority, 1);
        assert_eq!(outcome.jobs[1].priority, 2);
        // …and the named lookup resolves to the last-submitted one.
        assert_eq!(outcome.job("crash").unwrap().priority, 2);
        assert_eq!(outcome.job("other").unwrap().priority, 3);
        assert!(outcome.job("missing").is_none());
    }

    #[test]
    fn service_admits_mid_run_and_matches_the_closed_list() {
        let (program, dump) = fig1_failure();
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());

        let baseline = Reproducer::new(&program, ReproOptions::default())
            .reproduce(&dump, &INPUT)
            .unwrap();

        let service = TriageService::new(FleetConfig {
            store,
            ..Default::default()
        });
        let first = service
            .submit(FleetJob::new("first", &program, dump.clone(), &INPUT))
            .unwrap();
        // Advance the service mid-pipeline, then admit more work — the
        // definition of async admission.
        assert!(service.poll(), "first job still pending");
        let second = service
            .submit(FleetJob::new("second", &program, dump.clone(), &INPUT))
            .unwrap();
        assert_eq!(service.pending(), 2);
        let first = first.wait();
        let second = second.wait();
        service.drain(); // empty queue: returns immediately
        let summary = service.shutdown();
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.failed, 0);
        for outcome in [&first, &second] {
            let report = outcome.result.as_ref().expect("completed");
            assert_eq!(report.search.reproduced, baseline.search.reproduced);
            assert_eq!(report.search.winning, baseline.search.winning);
            assert_eq!(report.diffs, baseline.diffs);
        }
        // The duplicate rehydrated everything the first job computed.
        assert_eq!(second.computed, 0);
        assert_eq!(second.cache_hits, 5);
    }

    #[test]
    fn reject_policy_saturates_and_recovers() {
        let (program, dump) = fig1_failure();
        let service = TriageService::new(FleetConfig {
            admission: AdmissionPolicy::Reject { max_pending: 1 },
            ..Default::default()
        });
        let ticket = service
            .submit(FleetJob::new("only", &program, dump.clone(), &INPUT))
            .unwrap();
        let refused = service
            .submit(FleetJob::new("over", &program, dump.clone(), &INPUT))
            .expect_err("bound is full");
        assert_eq!(
            refused.reason,
            AdmitError::Saturated {
                pending: 1,
                max_pending: 1
            }
        );
        let outcome = ticket.wait();
        assert!(outcome.result.is_ok());
        // Capacity freed: the refused job was handed back and can be
        // resubmitted as-is — no rebuild, no dump re-clone.
        let again = service.submit(refused.job).unwrap();
        assert_eq!(again.name(), "over");
        assert!(again.wait().result.is_ok());
    }

    #[test]
    fn block_policy_helps_drive_and_never_deadlocks_single_threaded() {
        let (program, dump) = fig1_failure();
        let service = TriageService::new(FleetConfig {
            admission: AdmissionPolicy::Block { max_pending: 1 },
            ..Default::default()
        });
        // The first job fills the bound; the second submit must block,
        // help drive the first job to completion, and then admit —
        // all on this one thread.
        let first = service
            .submit(FleetJob::new("first", &program, dump.clone(), &INPUT))
            .unwrap();
        let second = service
            .submit(FleetJob::new("second", &program, dump, &INPUT))
            .unwrap();
        assert!(first.is_ready(), "blocked submit drove the first job");
        assert!(first.wait().result.is_ok());
        assert!(second.wait().result.is_ok());
        assert_eq!(service.summary().completed, 2);
    }

    #[test]
    fn zero_pending_bounds_are_clamped_to_one() {
        let (program, dump) = fig1_failure();
        // A literal zero bound would refuse all work (and livelock a
        // blocking submitter); the service clamps it.
        for admission in [
            AdmissionPolicy::Reject { max_pending: 0 },
            AdmissionPolicy::Block { max_pending: 0 },
            AdmissionPolicy::Adaptive {
                max_pending: 0,
                churn_permille: 250,
            },
        ] {
            let service = TriageService::new(FleetConfig {
                admission,
                ..Default::default()
            });
            let ticket = service
                .submit(FleetJob::new("only", &program, dump.clone(), &INPUT))
                .unwrap_or_else(|e| panic!("{admission:?} must admit one job: {e}"));
            assert!(ticket.wait().result.is_ok());
        }
    }

    #[test]
    fn adaptive_policy_sheds_churny_jobs_to_the_cold_store() {
        let (program, dump) = fig1_failure();
        // A hot store far too small for one job's artifacts: every
        // insert evicts, so the churn telemetry trips immediately.
        let hot: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::with_capacity(64));
        let cold: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let service = TriageService::new(FleetConfig {
            store: Arc::clone(&hot),
            cold_store: Some(Arc::clone(&cold)),
            admission: AdmissionPolicy::Adaptive {
                max_pending: 8,
                churn_permille: 250,
            },
            ..Default::default()
        });
        // Cold start: no telemetry yet, so the first job is admitted
        // hot — and churns the 64-byte store.
        let first = service
            .submit(FleetJob::new("churn", &program, dump.clone(), &INPUT))
            .unwrap()
            .wait();
        assert!(hot.stats().evictions > 0, "hot store must churn");
        // The telemetry loop closes: the next job's predicted footprint
        // would evict hot entries, so it is shed to the cold shard.
        let second = service
            .submit(FleetJob::new("shed", &program, dump.clone(), &INPUT))
            .unwrap()
            .wait();
        let summary = service.shutdown();
        assert_eq!(summary.shed, 1, "second job shed");
        assert!(cold.stats().inserts > 0, "shed job cached cold");
        // Shedding changes cache placement only — both jobs agree on
        // every observable.
        let (a, b) = (
            first.result.as_ref().expect("completed"),
            second.result.as_ref().expect("completed"),
        );
        assert_eq!(a.search.reproduced, b.search.reproduced);
        assert_eq!(a.search.tries, b.search.tries);
        assert_eq!(a.search.winning, b.search.winning);
        assert_eq!(a.csv_paths, b.csv_paths);
        assert_eq!(a.diffs, b.diffs);
    }

    #[test]
    fn adaptive_without_a_cold_store_never_sheds() {
        let (program, dump) = fig1_failure();
        let service = TriageService::new(FleetConfig {
            store: Arc::new(MemoryStore::with_capacity(64)),
            admission: AdmissionPolicy::Adaptive {
                max_pending: 8,
                churn_permille: 250,
            },
            ..Default::default()
        });
        for i in 0..2 {
            let outcome = service
                .submit(FleetJob::new(
                    format!("job-{i}"),
                    &program,
                    dump.clone(),
                    &INPUT,
                ))
                .unwrap()
                .wait();
            assert!(outcome.result.is_ok());
        }
        assert_eq!(service.shutdown().shed, 0);
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_error() {
        let (program, dump) = fig1_failure();
        let service = TriageService::new(FleetConfig::default());
        let summary = service.shutdown(); // empty: returns immediately
        assert_eq!(summary.jobs, 0);
        assert!(service.is_closed());
        let refused = service
            .submit(FleetJob::new("late", &program, dump, &INPUT))
            .expect_err("admission is closed");
        assert_eq!(refused.reason, AdmitError::ShutDown);
        assert_eq!(refused.job.name, "late", "job handed back");
    }

    #[test]
    fn try_outcome_is_nonblocking_and_tickets_survive_not_ready() {
        let (program, dump) = fig1_failure();
        let service = TriageService::new(FleetConfig::default());
        let ticket = service
            .submit(FleetJob::new("job", &program, dump, &INPUT))
            .unwrap();
        assert!(!ticket.is_ready());
        // Nothing has driven the service yet, so the outcome cannot be
        // ready.
        let Err(ticket) = ticket.try_outcome() else {
            panic!("outcome cannot be ready before any wave")
        };
        service.drain();
        assert!(ticket.is_ready());
        let outcome = ticket.try_outcome().expect("drained");
        assert!(outcome.result.is_ok());
    }
}
