//! # mcr-batch — the fleet scheduler
//!
//! A production triage service does not reproduce one core dump at a
//! time: it ingests *streams* of jobs, many of them near-duplicates of
//! the same underlying bug. This crate schedules N reproduction jobs as
//! one fleet:
//!
//! * **one executor** — every session's schedule search (and any other
//!   fan-out) draws from a single [`minipool::Limit`]-backed pool handle
//!   instead of constructing its own thread pool;
//! * **one artifact store** — all sessions share a content-addressed
//!   [`ArtifactStore`], so any phase already computed for the same
//!   *(program, input, dump, options)* anywhere in the fleet is
//!   rehydrated instead of re-run;
//! * **single-flight dedup** — identical phase units scheduled in the
//!   same wave run once: one leader computes, the duplicates wait and
//!   rehydrate from the store;
//! * **priorities and budgets** — jobs are scheduled in priority order,
//!   and each carries its own [`ReproOptions`] with per-phase
//!   [`PhaseBudget`](mcr_core::PhaseBudget)s;
//! * **per-job observer streams** — each job's [`PhaseEvent`]s are
//!   collected and returned,
//!   along with a fleet-wide summary (units computed / cached / deduped,
//!   store statistics, wall time).
//!
//! ```no_run
//! use mcr_batch::{Fleet, FleetConfig, FleetJob};
//! # let program = mcr_lang::compile("fn main() { }").unwrap();
//! # let dump: mcr_dump::CoreDump = unimplemented!();
//! let mut fleet = Fleet::new(FleetConfig::default());
//! for i in 0..3 {
//!     // Duplicate-heavy mixes are the common case: identical jobs
//!     // cost one pipeline, fleet-wide.
//!     fleet.push(FleetJob::new(format!("crash-{i}"), &program, dump.clone(), &[1, 2]));
//! }
//! let outcome = fleet.run();
//! assert_eq!(outcome.summary.jobs, 3);
//! assert!(outcome.summary.cache_hits + outcome.summary.deduped_in_flight > 0);
//! ```
//!
//! Determinism carries over from the phase layer: a job's report is
//! bit-identical whether it ran cold, warm (all cache hits), or batched
//! behind a duplicate — the property pinned by the repository's
//! `tests/batch.rs`.

#![warn(missing_docs)]

use mcr_core::{
    ArtifactStore, CancelToken, MemoryStore, Phase, PhaseEvent, PhaseKey, ReproError, ReproOptions,
    ReproReport, ReproSession, StoreStats, TimingLog,
};
use mcr_dump::CoreDump;
use mcr_lang::Program;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One reproduction job: a failure dump plus everything needed to
/// replay it.
#[derive(Debug)]
pub struct FleetJob<'p> {
    /// Job name, echoed in the [`JobOutcome`].
    pub name: String,
    /// The compiled program the dump came from.
    pub program: &'p Program,
    /// The failure core dump.
    pub dump: CoreDump,
    /// The failing input.
    pub input: Vec<i64>,
    /// Per-job pipeline options (budgets included). The fleet overrides
    /// the `store` and `pool` attachments with its shared ones.
    pub options: ReproOptions,
    /// Scheduling priority: lower runs earlier within each wave.
    pub priority: u32,
}

impl<'p> FleetJob<'p> {
    /// A job with default options and priority 0.
    pub fn new(
        name: impl Into<String>,
        program: &'p Program,
        dump: CoreDump,
        input: &[i64],
    ) -> FleetJob<'p> {
        FleetJob {
            name: name.into(),
            program,
            dump,
            input: input.to_vec(),
            options: ReproOptions::default(),
            priority: 0,
        }
    }

    /// Replaces the job's options.
    pub fn with_options(mut self, options: ReproOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the scheduling priority (lower = earlier).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker-thread budget shared by *everything* the fleet runs:
    /// concurrent phase units and the searches inside them. Defaults to
    /// the machine's available cores.
    pub workers: usize,
    /// The shared content-addressed artifact store. Defaults to an
    /// unbounded [`MemoryStore`].
    pub store: Arc<dyn ArtifactStore>,
    /// Fleet-wide cancellation: firing this token propagates to every
    /// job's session token. In-flight searches complete with partial
    /// results; other phases stop with
    /// [`ReproError::Cancelled`].
    pub cancel: CancelToken,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: minipool::available_parallelism(),
            store: Arc::new(MemoryStore::unbounded()),
            cancel: CancelToken::new(),
        }
    }
}

/// What happened to one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The job's scheduling priority.
    pub priority: u32,
    /// The final report, or the error that stopped the job.
    pub result: Result<ReproReport, ReproError>,
    /// The job's full phase-event stream, in order.
    pub events: Vec<PhaseEvent>,
    /// Phases this job computed itself.
    pub computed: u32,
    /// Phases rehydrated from the shared store.
    pub cache_hits: u32,
    /// Phase units that waited behind an identical in-flight unit
    /// (single-flight followers).
    pub deduped: u32,
    /// Wall-clock time this job spent executing phase units.
    pub busy: Duration,
}

/// Fleet-wide totals.
#[derive(Debug, Clone, Copy)]
pub struct FleetSummary {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that finished with a report.
    pub completed: usize,
    /// Jobs that stopped with an error.
    pub failed: usize,
    /// Phase units scheduled (computed + cache hits).
    pub phase_units: u64,
    /// Phase units actually computed.
    pub computed: u64,
    /// Phase units rehydrated from the store.
    pub cache_hits: u64,
    /// Phase units deduplicated while in flight (followers of a
    /// same-key leader in the same wave).
    pub deduped_in_flight: u64,
    /// Scheduling waves the fleet ran.
    pub waves: u64,
    /// Worker-thread budget the fleet ran with.
    pub workers: usize,
    /// Shared-store counters at the end of the run.
    pub store: StoreStats,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// The fleet's result: per-job outcomes (in submission order) plus the
/// summary.
#[derive(Debug)]
pub struct FleetOutcome {
    /// One outcome per submitted job, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Fleet-wide totals.
    pub summary: FleetSummary,
}

impl FleetOutcome {
    /// The outcome of the named job, if present.
    pub fn job(&self, name: &str) -> Option<&JobOutcome> {
        self.jobs.iter().find(|j| j.name == name)
    }
}

/// A live job's scheduling state (boxed behind [`JobState`] — a
/// session is orders of magnitude larger than a rejection record).
struct LiveSlot<'p> {
    session: ReproSession<'p>,
    log: Arc<Mutex<TimingLog>>,
    error: Option<ReproError>,
    deduped: u32,
    busy: Duration,
}

/// One job's scheduling state.
enum JobState<'p> {
    Live(Box<LiveSlot<'p>>),
    /// The session could not even be opened (e.g. the dump carries no
    /// failure).
    Rejected(Option<ReproError>),
}

/// A batch of reproduction jobs scheduled over one shared executor and
/// artifact store. See the [crate docs](crate) for the model.
pub struct Fleet<'p> {
    config: FleetConfig,
    jobs: Vec<FleetJob<'p>>,
}

impl<'p> Fleet<'p> {
    /// An empty fleet.
    pub fn new(config: FleetConfig) -> Fleet<'p> {
        Fleet {
            config,
            jobs: Vec::new(),
        }
    }

    /// Adds a job.
    pub fn push(&mut self, job: FleetJob<'p>) {
        self.jobs.push(job);
    }

    /// Number of submitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs have been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// A clone of the fleet-wide cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.config.cancel.clone()
    }

    /// Runs every job to completion (or error) and returns the
    /// outcomes.
    ///
    /// Scheduling model: the fleet repeatedly forms a *wave* — each
    /// unfinished job's next phase, in `(priority, submission)` order —
    /// deduplicates units with identical content-addressed
    /// [`PhaseKey`]s (one leader per key; followers rehydrate from the
    /// store afterwards), and fans the leaders out over the shared
    /// worker pool. Budgets and cancellation act inside the phases
    /// themselves.
    pub fn run(self) -> FleetOutcome {
        let started = Instant::now();
        let Fleet { config, jobs } = self;
        let limit = minipool::Limit::new(config.workers);
        let pool = minipool::Pool::with_limit(config.workers, limit);

        // Open one session per job, wiring in the shared store, the
        // shared executor handle, and a per-job event log.
        let names: Vec<(String, u32)> = jobs.iter().map(|j| (j.name.clone(), j.priority)).collect();
        let slots: Vec<Mutex<JobState<'p>>> = jobs
            .into_iter()
            .map(|job| {
                let mut options = job.options;
                options.store = Some(Arc::clone(&config.store));
                options.pool = Some(pool.clone());
                match ReproSession::new(job.program, job.dump, &job.input, options) {
                    Ok(mut session) => {
                        let log = Arc::new(Mutex::new(TimingLog::new()));
                        session.set_observer(Box::new(Arc::clone(&log)));
                        Mutex::new(JobState::Live(Box::new(LiveSlot {
                            session,
                            log,
                            error: None,
                            deduped: 0,
                            busy: Duration::ZERO,
                        })))
                    }
                    Err(e) => Mutex::new(JobState::Rejected(Some(e))),
                }
            })
            .collect();

        let mut order: Vec<usize> = (0..slots.len()).collect();
        order.sort_by_key(|&i| (names[i].1, i));

        let run_unit = |slot: &Mutex<JobState<'p>>, phase: Phase| {
            let mut guard = slot.lock().expect("fleet slot poisoned");
            if let JobState::Live(slot) = &mut *guard {
                let LiveSlot {
                    session,
                    error,
                    busy,
                    ..
                } = slot.as_mut();
                let t0 = Instant::now();
                if let Err(e) = session.run_phase(phase) {
                    *error = Some(e);
                }
                *busy += t0.elapsed();
            }
        };

        let mut waves = 0u64;
        let mut cancelled_propagated = false;
        loop {
            if config.cancel.is_cancelled() && !cancelled_propagated {
                cancelled_propagated = true;
                for slot in &slots {
                    if let JobState::Live(live) = &*slot.lock().expect("fleet slot poisoned") {
                        live.session.cancel_token().cancel();
                    }
                }
            }

            // Form the wave: every unfinished, unfailed job's next
            // phase, in priority order.
            let mut leaders: Vec<(usize, Phase)> = Vec::new();
            let mut followers: Vec<(usize, Phase)> = Vec::new();
            let mut in_flight: HashSet<PhaseKey> = HashSet::new();
            for &i in &order {
                let guard = slots[i].lock().expect("fleet slot poisoned");
                if let JobState::Live(live) = &*guard {
                    if live.error.is_some() {
                        continue;
                    }
                    let Some(phase) = live.session.next_phase() else {
                        continue;
                    };
                    let key = live.session.next_phase_key().expect("upstream complete");
                    if in_flight.insert(key) {
                        leaders.push((i, phase));
                    } else {
                        followers.push((i, phase));
                    }
                }
            }
            if leaders.is_empty() {
                break;
            }
            waves += 1;

            // Leaders fan out over the shared pool; distinct jobs, so
            // each worker locks a distinct slot.
            pool.for_each_index(leaders.len(), |k| {
                let (i, phase) = leaders[k];
                run_unit(&slots[i], phase);
            });
            // Followers run after their leader: their key now hits the
            // store and rehydrates (or recomputes, if the leader's
            // artifact was partial and uncacheable — still correct).
            for (i, phase) in followers {
                run_unit(&slots[i], phase);
                if let JobState::Live(live) = &mut *slots[i].lock().expect("fleet slot poisoned") {
                    live.deduped += 1;
                }
            }
        }

        // Assemble outcomes in submission order.
        let mut outcomes = Vec::with_capacity(slots.len());
        let mut completed = 0usize;
        let mut failed = 0usize;
        let mut total_computed = 0u64;
        let mut total_hits = 0u64;
        let mut total_deduped = 0u64;
        for (i, slot) in slots.into_iter().enumerate() {
            let (name, priority) = names[i].clone();
            let outcome = match slot.into_inner().expect("fleet slot poisoned") {
                JobState::Rejected(e) => JobOutcome {
                    name,
                    priority,
                    result: Err(e.expect("rejection recorded")),
                    events: Vec::new(),
                    computed: 0,
                    cache_hits: 0,
                    deduped: 0,
                    busy: Duration::ZERO,
                },
                JobState::Live(live) => {
                    let LiveSlot {
                        session,
                        log,
                        error,
                        deduped,
                        busy,
                    } = *live;
                    let events = log.lock().expect("fleet log poisoned").events.clone();
                    let computed = events
                        .iter()
                        .filter(|e| matches!(e, PhaseEvent::Finished { .. }))
                        .count() as u32;
                    let cache_hits = events
                        .iter()
                        .filter(|e| matches!(e, PhaseEvent::CacheHit { .. }))
                        .count() as u32;
                    let result = match error {
                        Some(e) => Err(e),
                        None => Ok(session.report().expect("no error means complete")),
                    };
                    JobOutcome {
                        name,
                        priority,
                        result,
                        events,
                        computed,
                        cache_hits,
                        deduped,
                        busy,
                    }
                }
            };
            match &outcome.result {
                Ok(_) => completed += 1,
                Err(_) => failed += 1,
            }
            total_computed += outcome.computed as u64;
            total_hits += outcome.cache_hits as u64;
            total_deduped += outcome.deduped as u64;
            outcomes.push(outcome);
        }

        let summary = FleetSummary {
            jobs: outcomes.len(),
            completed,
            failed,
            phase_units: total_computed + total_hits,
            computed: total_computed,
            cache_hits: total_hits,
            deduped_in_flight: total_deduped,
            waves,
            workers: config.workers,
            store: config.store.stats(),
            wall: started.elapsed(),
        };
        FleetOutcome {
            jobs: outcomes,
            summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_core::{find_failure, Reproducer};

    const FIG1: &str = r#"
        global x: int;
        global input: [int; 2];
        lock l;
        fn F(p) { p[0] = 1; }
        fn T1() {
            var i; var p;
            for (i = 0; i < 2; i = i + 1) {
                x = 0;
                p = alloc(2);
                acquire l;
                if (input[i] > 0) {
                    x = 1;
                    p = null;
                }
                release l;
                if (!x) { F(p); }
            }
        }
        fn T2() { x = 0; }
        fn main() { spawn T1(); spawn T2(); }
    "#;

    const INPUT: [i64; 2] = [0, 1];

    fn fig1_failure() -> (mcr_lang::Program, mcr_dump::CoreDump) {
        let p = mcr_lang::compile(FIG1).unwrap();
        let sf = find_failure(&p, &INPUT, 0..200_000, 1_000_000).expect("stress exposes");
        (p, sf.dump)
    }

    #[test]
    fn duplicate_jobs_are_deduplicated_and_agree_with_a_solo_run() {
        let (program, dump) = fig1_failure();
        let solo = Reproducer::new(&program, ReproOptions::default())
            .reproduce(&dump, &INPUT)
            .unwrap();

        let mut fleet = Fleet::new(FleetConfig::default());
        for i in 0..3 {
            fleet.push(FleetJob::new(
                format!("dup-{i}"),
                &program,
                dump.clone(),
                &INPUT,
            ));
        }
        let outcome = fleet.run();
        assert_eq!(outcome.summary.jobs, 3);
        assert_eq!(outcome.summary.completed, 3);
        assert_eq!(outcome.summary.failed, 0);
        // 3 jobs x 5 phases scheduled, but only 5 computed: the
        // duplicates were either deduped in flight or store hits.
        assert_eq!(outcome.summary.phase_units, 15);
        assert_eq!(outcome.summary.computed, 5);
        assert_eq!(outcome.summary.cache_hits, 10);
        assert_eq!(outcome.summary.deduped_in_flight, 10);
        assert_eq!(outcome.summary.waves, 5);
        for job in &outcome.jobs {
            let report = job.result.as_ref().expect("job completed");
            assert_eq!(report.search.reproduced, solo.search.reproduced);
            assert_eq!(report.search.tries, solo.search.tries);
            assert_eq!(report.search.winning, solo.search.winning);
            assert_eq!(report.csv_paths, solo.csv_paths);
            assert_eq!(report.diffs, solo.diffs);
        }
        // Exactly one job computed; the others only hit.
        let computed: u32 = outcome.jobs.iter().map(|j| j.computed).sum();
        assert_eq!(computed, 5);
    }

    #[test]
    fn priorities_order_leaders_and_outcomes_keep_submission_order() {
        let (program, dump) = fig1_failure();
        let mut fleet = Fleet::new(FleetConfig {
            workers: 1,
            ..Default::default()
        });
        fleet.push(FleetJob::new("late", &program, dump.clone(), &INPUT).with_priority(9));
        // A *distinct* unit (different options → different keys).
        let opts = ReproOptions::builder().trace_window(1_000_000).build();
        fleet.push(
            FleetJob::new("early", &program, dump.clone(), &INPUT)
                .with_options(opts)
                .with_priority(1),
        );
        let outcome = fleet.run();
        // Outcomes stay in submission order regardless of priority.
        assert_eq!(outcome.jobs[0].name, "late");
        assert_eq!(outcome.jobs[1].name, "early");
        assert_eq!(outcome.summary.completed, 2);
        // Distinct keys: nothing deduped, every unit computed.
        assert_eq!(outcome.summary.deduped_in_flight, 0);
        assert_eq!(outcome.summary.computed, 10);
    }

    #[test]
    fn rejected_dumps_surface_as_failed_jobs() {
        let program = mcr_lang::compile("global x: int; fn main() { x = 1; }").unwrap();
        let mut vm = mcr_vm::Vm::new(&program, &[]);
        mcr_vm::run(
            &mut vm,
            &mut mcr_vm::DeterministicScheduler::new(),
            &mut mcr_vm::NullObserver,
            10_000,
        );
        let dump =
            mcr_dump::CoreDump::capture(&vm, mcr_vm::ThreadId(0), mcr_dump::DumpReason::Manual);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.push(FleetJob::new("not-a-failure", &program, dump, &[]));
        let outcome = fleet.run();
        assert_eq!(outcome.summary.failed, 1);
        assert!(matches!(
            outcome.jobs[0].result,
            Err(ReproError::NotAFailureDump)
        ));
    }

    #[test]
    fn pre_cancelled_fleet_stops_every_job() {
        let (program, dump) = fig1_failure();
        let config = FleetConfig::default();
        config.cancel.cancel();
        let mut fleet = Fleet::new(config);
        fleet.push(FleetJob::new("job", &program, dump, &INPUT));
        let outcome = fleet.run();
        assert_eq!(outcome.summary.failed, 1);
        assert!(matches!(
            outcome.jobs[0].result,
            Err(ReproError::Cancelled(Phase::Index))
        ));
    }

    #[test]
    fn warm_store_makes_a_second_fleet_all_hits() {
        let (program, dump) = fig1_failure();
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::unbounded());
        let config = FleetConfig {
            store: Arc::clone(&store),
            ..Default::default()
        };
        let mut first = Fleet::new(config.clone());
        first.push(FleetJob::new("cold", &program, dump.clone(), &INPUT));
        let first = first.run();
        assert_eq!(first.summary.computed, 5);

        let mut second = Fleet::new(config);
        second.push(FleetJob::new("warm", &program, dump, &INPUT));
        let second = second.run();
        assert_eq!(second.summary.computed, 0);
        assert_eq!(second.summary.cache_hits, 5);
        let cold = first.jobs[0].result.as_ref().unwrap();
        let warm = second.jobs[0].result.as_ref().unwrap();
        // Rehydrated reports are bit-identical, timings included.
        assert_eq!(cold, warm);
    }
}
